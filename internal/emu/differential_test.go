// Differential tests: the block engine must be architecturally
// indistinguishable from the per-instruction reference loop — bit-identical
// X/F/V/PC/Instret/Cycles at every slice boundary and identical faults —
// across the workload suite. check.sh runs these under -race.
package emu_test

import (
	"testing"

	"github.com/eurosys26p57/chimera/internal/bench"
	"github.com/eurosys26p57/chimera/internal/emu"
	"github.com/eurosys26p57/chimera/internal/instrument"
	"github.com/eurosys26p57/chimera/internal/kernel"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
	"github.com/eurosys26p57/chimera/internal/workload"
)

// compareState requires bit-identical architectural state.
func compareState(t *testing.T, tag string, blk, ref *emu.CPU) {
	t.Helper()
	if blk.PC != ref.PC {
		t.Fatalf("%s: PC %#x != ref %#x", tag, blk.PC, ref.PC)
	}
	if blk.Instret != ref.Instret {
		t.Fatalf("%s: Instret %d != ref %d", tag, blk.Instret, ref.Instret)
	}
	if blk.Cycles != ref.Cycles {
		t.Fatalf("%s: Cycles %d != ref %d", tag, blk.Cycles, ref.Cycles)
	}
	if blk.X != ref.X {
		t.Fatalf("%s: integer register files diverge", tag)
	}
	if blk.F != ref.F {
		t.Fatalf("%s: FP register files diverge", tag)
	}
	if blk.V != ref.V || blk.VL != ref.VL || blk.VT != ref.VT {
		t.Fatalf("%s: vector state diverges", tag)
	}
}

// diffImage runs img on a block-engine hart (trace tier at threshold, 0 =
// off) and a stepping hart in lockstep slices and compares full state at
// every boundary.
func diffImage(t *testing.T, img *obj.Image, isa riscv.Ext, threshold uint32) {
	t.Helper()
	mk := func(interp bool) *emu.CPU {
		mem := emu.NewMemory()
		mem.MapImage(img)
		cpu := emu.NewCPU(mem, isa)
		cpu.Interp = interp
		if !interp {
			cpu.TraceThreshold = threshold
		}
		cpu.Reset(img)
		return cpu
	}
	blk, ref := mk(false), mk(true)
	const slice = 997 // prime, so slice edges wander through block bodies
	for i := 0; i < 1_000_000; i++ {
		sb := blk.Run(slice)
		sr := ref.Run(slice)
		if sb != sr {
			t.Fatalf("slice %d: stop %+v != ref %+v", i, sb, sr)
		}
		compareState(t, "slice", blk, ref)
		if sb.Kind != emu.StopLimit {
			if sb.Kind == emu.StopFault {
				bf, rf := sb.Fault, sr.Fault
				if bf.Kind != rf.Kind || bf.PC != rf.PC || bf.Addr != rf.Addr {
					t.Fatalf("fault %v != ref %v", bf, rf)
				}
			}
			return // ecall/ebreak/fault: program done
		}
	}
	t.Fatal("workload did not terminate")
}

// Each workload diffs under three block-engine configurations: the trace
// tier off (pure block tier), the production promotion threshold, and an
// aggressive threshold of 2 that pushes nearly all execution through
// superblocks (guards, side exits, seam truncation all hot).
func diffTiers(t *testing.T, img *obj.Image, isa riscv.Ext) {
	t.Helper()
	for _, m := range []struct {
		name      string
		threshold uint32
	}{{"blocks", 0}, {"traces", emu.DefaultTraceThreshold}, {"traces-hot", 2}} {
		t.Run(m.name, func(t *testing.T) { diffImage(t, img, isa, m.threshold) })
	}
}

func TestDifferentialFib(t *testing.T) {
	img, err := workload.Fibonacci(200, riscv.RV64GC, true)
	if err != nil {
		t.Fatal(err)
	}
	diffTiers(t, img, riscv.RV64GC)
}

func TestDifferentialMatmulScalar(t *testing.T) {
	img, err := workload.Matmul(12, false, true)
	if err != nil {
		t.Fatal(err)
	}
	diffTiers(t, img, riscv.RV64GC)
}

func TestDifferentialMatmulRVV(t *testing.T) {
	img, err := workload.Matmul(12, true, true)
	if err != nil {
		t.Fatal(err)
	}
	diffTiers(t, img, riscv.RV64GCV)
}

// TestDifferentialSPEC drives SPEC-shaped synthetics through the kernel —
// syscalls, SMILE trampolines, runtime rewriting, indirect-jump hooks — on
// both engines and compares state at every scheduler slice.
func TestDifferentialSPEC(t *testing.T) {
	cases := workload.SpecSuite()[:3]
	for _, c := range cases {
		c := c
		t.Run(c.Params.Name, func(t *testing.T) {
			c.Params.Rounds = 6
			img, err := workload.BuildSpec(c.Params, true)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(interp bool, threshold uint32) *kernel.Process {
				v, err := kernel.VariantFromImage(img)
				if err != nil {
					t.Fatal(err)
				}
				p, err := kernel.NewProcess(c.Params.Name, []kernel.Variant{v})
				if err != nil {
					t.Fatal(err)
				}
				p.CPU.Interp = interp
				p.CPU.TraceThreshold = threshold
				return p
			}
			// traces-hot (threshold 2) routes nearly every kernel-visible
			// dispatch through superblocks — syscall ecalls, trampoline
			// ebreaks, and runtime-rewrite pokes all land mid-trace.
			for _, m := range []struct {
				name      string
				threshold uint32
			}{{"traces", emu.DefaultTraceThreshold}, {"traces-hot", 2}} {
				t.Run(m.name, func(t *testing.T) {
					blk, ref := mk(false, m.threshold), mk(true, 0)
					for i := 0; i < 1_000_000; i++ {
						_, stB, errB := blk.Run(4099)
						_, stR, errR := ref.Run(4099)
						if (errB == nil) != (errR == nil) || stB != stR {
							t.Fatalf("slice %d: status %v/%v != ref %v/%v", i, stB, errB, stR, errR)
						}
						compareState(t, "slice", blk.CPU, ref.CPU)
						if stB == kernel.StatusExited {
							if blk.ExitCode != ref.ExitCode {
								t.Fatalf("exit %d != ref %d", blk.ExitCode, ref.ExitCode)
							}
							return
						}
					}
					t.Fatal("did not terminate")
				})
			}
		})
	}
}

// TestRunMatmulZeroAllocs is the alloc regression test: once the
// translation caches are warm, a full matmul run must not allocate — not
// under traces, not under the block tier alone, not under the
// per-instruction loop.
func TestRunMatmulZeroAllocs(t *testing.T) {
	img, err := workload.Matmul(12, false, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range tierModes {
		t.Run(mode.name, func(t *testing.T) {
			mem := emu.NewMemory()
			mem.MapImage(img)
			cpu := emu.NewCPU(mem, riscv.RV64GC)
			cpu.Interp = mode.interp
			cpu.TraceThreshold = mode.threshold
			full := func() {
				cpu.Reset(img)
				for {
					stop := cpu.Run(10_000_000)
					if stop.Kind == emu.StopLimit {
						continue
					}
					if stop.Kind != emu.StopEcall {
						t.Fatalf("stop: %+v", stop)
					}
					return
				}
			}
			warmStable(mode.threshold, func() emu.BlockStats { return cpu.Blocks }, full)
			if allocs := testing.AllocsPerRun(5, full); allocs != 0 {
				t.Errorf("steady-state Run allocates %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestRunSPECZeroAllocs is the serving-path alloc gate: a warmed kernel
// process re-run via Process.Reset must execute a full SPEC-shaped workload
// — syscalls, trampolines, indirect hooks, trace promotion — without a
// single heap allocation, under all three tiers. Every kernel process
// carries an attached instrument.Hooks set, so the base submode is already
// the hooked-but-nil-observer path; the coverage and cmplog submodes prove
// that installed observers (and the per-exec ResetState inside
// Process.Reset) stay allocation-free too.
func TestRunSPECZeroAllocs(t *testing.T) {
	c := workload.SpecSuite()[0]
	c.Params.Rounds = 4
	img, err := workload.BuildSpec(c.Params, true)
	if err != nil {
		t.Fatal(err)
	}
	observers := []struct {
		name    string
		install func(*instrument.Hooks)
	}{
		{"nilobs", nil},
		{"coverage", func(h *instrument.Hooks) { h.Cov = instrument.NewCoverage() }},
		{"cmplog", func(h *instrument.Hooks) { h.Cmp = instrument.NewCmpLog() }},
	}
	for _, mode := range tierModes {
		for _, obs := range observers {
			t.Run(mode.name+"/"+obs.name, func(t *testing.T) {
				v, err := kernel.VariantFromImage(img)
				if err != nil {
					t.Fatal(err)
				}
				p, err := kernel.NewProcess(c.Params.Name, []kernel.Variant{v})
				if err != nil {
					t.Fatal(err)
				}
				p.CPU.Interp = mode.interp
				p.CPU.TraceThreshold = mode.threshold
				if obs.install != nil {
					obs.install(p.Hooks())
					p.CPU.RefreshHooks()
				}
				full := func() {
					p.Reset()
					if _, err := bench.RunOnCore(p, riscv.RV64GCV); err != nil {
						t.Fatal(err)
					}
				}
				warmStable(mode.threshold, func() emu.BlockStats { return p.CPU.Blocks }, full)
				if allocs := testing.AllocsPerRun(5, full); allocs != 0 {
					t.Errorf("steady-state process run allocates %.1f allocs/op, want 0", allocs)
				}
			})
		}
	}
}
