package emu

import (
	"testing"

	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

// hotCPU builds a CPU over text with an aggressive promotion threshold so
// tests exercise the trace tier without long warmups.
func hotCPU(t *testing.T, text []byte) *CPU {
	t.Helper()
	cpu := codeCPU(t, text)
	cpu.TraceThreshold = 2
	return cpu
}

// sameState requires bit-identical architectural state between two harts.
func sameState(t *testing.T, tag string, a, b *CPU) {
	t.Helper()
	if a.PC != b.PC || a.Instret != b.Instret || a.Cycles != b.Cycles {
		t.Fatalf("%s: PC %#x/%#x Instret %d/%d Cycles %d/%d",
			tag, a.PC, b.PC, a.Instret, b.Instret, a.Cycles, b.Cycles)
	}
	if a.X != b.X {
		t.Fatalf("%s: integer register files diverge", tag)
	}
	if a.F != b.F {
		t.Fatalf("%s: FP register files diverge", tag)
	}
}

// TestTraceCountersShape checks the shape the trace tier gives the service
// counters on a hot loop: traces are built and hit, trace-retired
// instructions are accounted, and Retired still equals Instret exactly.
func TestTraceCountersShape(t *testing.T) {
	cpu := hotCPU(t, enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A1, Rs1: riscv.A1, Imm: 2},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -8},
	))
	if stop := cpu.Run(600); stop.Kind != StopLimit {
		t.Fatalf("stop: %+v", stop)
	}
	s := cpu.Blocks
	if s.TracesBuilt == 0 || s.TraceHits == 0 || s.TraceRetired == 0 {
		t.Fatalf("trace tier not exercised: %+v", s)
	}
	if s.Retired != cpu.Instret {
		t.Errorf("Retired=%d, Instret=%d", s.Retired, cpu.Instret)
	}
	if s.TraceRetired > s.Retired {
		t.Errorf("TraceRetired=%d exceeds Retired=%d", s.TraceRetired, s.Retired)
	}
	// A self-loop unrolls to maxTraceBlocks copies, so a trace dispatch
	// retires far more than the 3-instruction block tier would.
	if r := s.RetiredPerDispatch(); r < 4 {
		t.Errorf("RetiredPerDispatch=%.2f, want unrolled (>4): %+v", r, s)
	}
	if cpu.X[riscv.A0]*2 != cpu.X[riscv.A1] {
		t.Errorf("loop arithmetic wrong under traces: a0=%d a1=%d", cpu.X[riscv.A0], cpu.X[riscv.A1])
	}
}

// TestTracePokeMidTrace patches an instruction in the middle of a block
// that is live inside a hot trace: the next dispatch must fall back off the
// dead trace and execute the new bytes, with nothing stale retired.
func TestTracePokeMidTrace(t *testing.T) {
	cpu := hotCPU(t, enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -8},
	))
	if stop := cpu.Run(400); stop.Kind != StopLimit {
		t.Fatalf("warmup stop: %+v", stop)
	}
	if cpu.Blocks.TracesBuilt == 0 || cpu.Blocks.TraceHits == 0 {
		t.Fatalf("trace tier not exercised: %+v", cpu.Blocks)
	}

	patch := enc(t, riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 50})
	if !cpu.Mem.Poke(obj.TextBase+4, patch) {
		t.Fatal("poke failed")
	}
	cpu.PC = obj.TextBase
	before := cpu.X[riscv.A0]
	if stop := cpu.Run(3); stop.Kind != StopLimit {
		t.Fatalf("stop after poke: %+v", stop)
	}
	if got := cpu.X[riscv.A0] - before; got != 51 {
		t.Errorf("patched iteration added %d, want 51 (stale trace?)", got)
	}
	if cpu.Blocks.Invalidations == 0 {
		t.Errorf("no invalidation counted after poke: %+v", cpu.Blocks)
	}
}

// TestTraceMapPageRemap swaps the text page's frame (the MMView primitive)
// under a live trace; the hart must execute the new frame's code.
func TestTraceMapPageRemap(t *testing.T) {
	cpu := hotCPU(t, enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -4},
	))
	if stop := cpu.Run(200); stop.Kind != StopLimit {
		t.Fatalf("warmup stop: %+v", stop)
	}
	if cpu.Blocks.TracesBuilt == 0 {
		t.Fatalf("trace tier not exercised: %+v", cpu.Blocks)
	}

	frame := &Page{Perm: obj.PermRX}
	copy(frame.Data[:], enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 7},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -4},
	))
	cpu.Mem.MapPage(obj.TextBase, frame)

	cpu.PC = obj.TextBase
	before := cpu.X[riscv.A0]
	if stop := cpu.Run(2); stop.Kind != StopLimit {
		t.Fatalf("stop after remap: %+v", stop)
	}
	if got := cpu.X[riscv.A0] - before; got != 7 {
		t.Errorf("remapped iteration added %d, want 7 (stale trace?)", got)
	}
}

// TestTraceSharedFrameTwoCPUs runs two harts with hot traces over one
// address space: a poke through the shared frame must kill both harts'
// traces, even though only one memory saw the Poke call.
func TestTraceSharedFrameTwoCPUs(t *testing.T) {
	mem := NewMemory()
	text := enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 2},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -8},
	)
	mem.Map(obj.TextBase, uint64(len(text)), obj.PermRX)
	mem.write(obj.TextBase, text)

	// Hart B runs the same frames through a second address space, the
	// cross-process shared-text arrangement (ShareFrom does not bump the
	// sharer's map generation, so only the per-frame gen protects B).
	memB := NewMemory()
	memB.ShareFrom(mem, obj.TextBase, uint64(len(text)))

	a, b := NewCPU(mem, riscv.RV64GC), NewCPU(memB, riscv.RV64GC)
	a.TraceThreshold, b.TraceThreshold = 2, 2
	a.PC, b.PC = obj.TextBase, obj.TextBase
	for i := 0; i < 10; i++ {
		if stop := a.Run(30); stop.Kind != StopLimit {
			t.Fatalf("hart A stop: %+v", stop)
		}
		if stop := b.Run(30); stop.Kind != StopLimit {
			t.Fatalf("hart B stop: %+v", stop)
		}
	}
	if a.Blocks.TracesBuilt == 0 || b.Blocks.TracesBuilt == 0 {
		t.Fatalf("trace tier not exercised: A=%+v B=%+v", a.Blocks, b.Blocks)
	}

	patch := enc(t, riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 100})
	if !mem.Poke(obj.TextBase+4, patch) {
		t.Fatal("poke failed")
	}
	for name, c := range map[string]*CPU{"A": a, "B": b} {
		c.PC = obj.TextBase
		before := c.X[riscv.A0]
		if stop := c.Run(3); stop.Kind != StopLimit {
			t.Fatalf("hart %s stop after poke: %+v", name, stop)
		}
		if got := c.X[riscv.A0] - before; got != 101 {
			t.Errorf("hart %s: patched iteration added %d, want 101", name, got)
		}
	}
}

// TestTraceSideExitPrecision trains a branch one way, then lets the guard
// fail: the side exit must land on the block tier with state bit-identical
// to the stepping loop at every slice boundary, including the final flip.
func TestTraceSideExitPrecision(t *testing.T) {
	text := enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.BNE, Rs1: riscv.A0, Rs2: riscv.A2, Imm: -4},
		riscv.Inst{Op: riscv.EBREAK},
	)
	mk := func(interp bool) *CPU {
		cpu := codeCPU(t, text)
		cpu.Interp = interp
		cpu.TraceThreshold = 2
		cpu.X[riscv.A2] = 1000
		return cpu
	}
	trc, ref := mk(false), mk(true)
	const slice = 97 // prime: slice edges wander through the trace body
	for i := 0; ; i++ {
		st := trc.Run(slice)
		sr := ref.Run(slice)
		if st != sr {
			t.Fatalf("slice %d: stop %+v != ref %+v", i, st, sr)
		}
		sameState(t, "slice", trc, ref)
		if st.Kind == StopBreak {
			break
		}
		if st.Kind != StopLimit {
			t.Fatalf("slice %d: unexpected stop %+v", i, st)
		}
		if i > 100 {
			t.Fatal("did not terminate")
		}
	}
	if trc.Blocks.TracesBuilt == 0 || trc.Blocks.SideExits == 0 {
		t.Fatalf("side exit not exercised: %+v", trc.Blocks)
	}
	if trc.X[riscv.A0] != 1000 {
		t.Errorf("a0=%d, want 1000", trc.X[riscv.A0])
	}
}

// TestTracePICIndirect drives a jalr that alternates between two targets:
// the polymorphic cache must hold both (PIC hits, not per-dispatch misses)
// and the trace tier's burned-in indirect guard must side-exit precisely on
// the off-target half of the dispatches.
func TestTracePICIndirect(t *testing.T) {
	// 0x00: andi t1, a0, 1
	// 0x04: slli t1, t1, 5
	// 0x08: add  t1, t1, a4     (a4 = TextBase+0x20, target table)
	// 0x0c: jalr zero, t1, 0
	// 0x20: addi a0,a0,1 ; jal -0x24    (target for even a0)
	// 0x40: addi a0,a0,1 ; jal -0x44    (target for odd a0)
	text := make([]byte, 0x48)
	copy(text[0x00:], enc(t,
		riscv.Inst{Op: riscv.ANDI, Rd: riscv.T1, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.SLLI, Rd: riscv.T1, Rs1: riscv.T1, Imm: 5},
		riscv.Inst{Op: riscv.ADD, Rd: riscv.T1, Rs1: riscv.T1, Rs2: riscv.A4},
		riscv.Inst{Op: riscv.JALR, Rd: riscv.Zero, Rs1: riscv.T1, Imm: 0},
	))
	copy(text[0x20:], enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -0x24},
	))
	copy(text[0x40:], enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -0x44},
	))
	mk := func(interp bool) *CPU {
		cpu := codeCPU(t, text)
		cpu.Interp = interp
		// Default threshold: the block tier chain-follows through the PIC
		// for the first ~64 iterations (both targets cached → hits), then
		// the trace takes over with the MRU target burned in and the
		// off-target half of the dispatches side-exits.
		cpu.X[riscv.A4] = obj.TextBase + 0x20
		return cpu
	}
	trc, ref := mk(false), mk(true)
	const slice = 89
	for i := 0; i < 20; i++ {
		st := trc.Run(slice)
		sr := ref.Run(slice)
		if st != sr {
			t.Fatalf("slice %d: stop %+v != ref %+v", i, st, sr)
		}
		sameState(t, "slice", trc, ref)
	}
	s := trc.Blocks
	if s.PICHits == 0 {
		t.Fatalf("polymorphic cache never hit: %+v", s)
	}
	if s.PICMisses > s.PICHits {
		t.Errorf("PIC thrashing on a 2-target site: hits=%d misses=%d", s.PICHits, s.PICMisses)
	}
	if s.TracesBuilt == 0 || s.SideExits == 0 {
		t.Errorf("burned indirect guard not exercised: %+v", s)
	}
	// 6 instructions per iteration; every iteration bumps a0 once.
	if want := trc.Instret / 6; trc.X[riscv.A0] != want {
		t.Errorf("a0=%d, want %d", trc.X[riscv.A0], want)
	}
}

// TestTraceMidFaultPrecision faults a load deep inside a hot trace (guards
// already passed, cross-block state live) and requires the exact
// architectural state the stepping loop produces.
func TestTraceMidFaultPrecision(t *testing.T) {
	text := enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.LD, Rd: riscv.A1, Rs1: riscv.A3, Imm: 0},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -8},
	)
	run := func(interp bool) *CPU {
		cpu := codeCPU(t, text)
		cpu.Interp = interp
		cpu.TraceThreshold = 2
		cpu.Mem.Map(0x10000, obj.PageSize, obj.PermRW)
		cpu.X[riscv.A3] = 0x10000
		if stop := cpu.Run(300); stop.Kind != StopLimit { // train the trace
			t.Fatalf("interp=%v: warmup stop %+v", interp, stop)
		}
		cpu.X[riscv.A3] = 0xdead0000 // next load faults mid-trace
		stop := cpu.Run(100)
		if stop.Kind != StopFault {
			t.Fatalf("interp=%v: stop %+v, want fault", interp, stop)
		}
		f := stop.Fault
		if f.Kind != FaultAccess || f.PC != obj.TextBase+4 || f.Addr != 0xdead0000 {
			t.Errorf("interp=%v: fault %+v", interp, f)
		}
		return cpu
	}
	ref := run(true)
	trc := run(false)
	sameState(t, "fault", trc, ref)
	if trc.Blocks.TraceHits == 0 {
		t.Fatalf("trace tier not exercised: %+v", trc.Blocks)
	}
}

// TestTraceThresholdZeroDisables pins the tier off and checks no trace is
// ever built, however hot the loop gets.
func TestTraceThresholdZeroDisables(t *testing.T) {
	cpu := codeCPU(t, enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -4},
	))
	cpu.TraceThreshold = 0
	if stop := cpu.Run(10_000); stop.Kind != StopLimit {
		t.Fatalf("stop: %+v", stop)
	}
	if s := cpu.Blocks; s.TracesBuilt != 0 || s.TraceHits != 0 {
		t.Errorf("trace tier ran while disabled: %+v", s)
	}
}
