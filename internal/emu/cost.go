package emu

import "github.com/eurosys26p57/chimera/internal/riscv"

// CostModel charges cycles per retired instruction. The constants are the
// calibration knobs documented in DESIGN.md §4: they are chosen so the
// *relative* results of the paper's experiments land in the reported bands,
// not to model any particular microarchitecture.
type CostModel struct {
	ALU        uint64 // simple integer op
	Mul        uint64
	Div        uint64
	Mem        uint64 // scalar load/store
	Branch     uint64 // not taken
	TakenExtra uint64 // extra cycles for a taken branch / any jump
	FPU        uint64 // fp add/sub/mul/cvt/mv
	FDiv       uint64
	FMA        uint64
	VSet       uint64 // vsetvli
	VMem       uint64 // vector load/store (whole register group)
	VALU       uint64 // vector integer op
	VFMA       uint64 // vector fp multiply-accumulate
	VReduce    uint64 // vector reduction
}

// DefaultCost is the calibrated model used by all experiments.
var DefaultCost = CostModel{
	ALU:        1,
	Mul:        3,
	Div:        20,
	Mem:        3,
	Branch:     1,
	TakenExtra: 1,
	FPU:        4,
	FDiv:       15,
	FMA:        5,
	VSet:       1,
	VMem:       4,
	VALU:       2,
	VFMA:       3,
	VReduce:    6,
}

// Costs returns both cycle charges for inst — (not-taken, taken) — in one
// call, the shape the block/trace builders predecode into µops so dispatch
// never consults the model.
func (c *CostModel) Costs(inst riscv.Inst) (n, t uint64) {
	return c.Cost(inst, false), c.Cost(inst, true)
}

// Cost returns the cycle charge for one retired instruction; taken reports
// whether a branch/jump redirected control flow.
func (c *CostModel) Cost(inst riscv.Inst, taken bool) uint64 {
	var base uint64
	switch inst.Op {
	case riscv.MUL, riscv.MULH, riscv.MULHSU, riscv.MULHU, riscv.MULW:
		base = c.Mul
	case riscv.DIV, riscv.DIVU, riscv.REM, riscv.REMU,
		riscv.DIVW, riscv.DIVUW, riscv.REMW, riscv.REMUW:
		base = c.Div
	case riscv.LB, riscv.LH, riscv.LW, riscv.LD, riscv.LBU, riscv.LHU, riscv.LWU,
		riscv.SB, riscv.SH, riscv.SW, riscv.SD,
		riscv.FLW, riscv.FLD, riscv.FSW, riscv.FSD:
		base = c.Mem
	case riscv.BEQ, riscv.BNE, riscv.BLT, riscv.BGE, riscv.BLTU, riscv.BGEU:
		base = c.Branch
	case riscv.JAL, riscv.JALR:
		base = c.Branch
		taken = true
	case riscv.FADDS, riscv.FSUBS, riscv.FMULS, riscv.FADDD, riscv.FSUBD, riscv.FMULD,
		riscv.FSGNJS, riscv.FSGNJD, riscv.FCVTSL, riscv.FCVTDL, riscv.FCVTLD,
		riscv.FMVXD, riscv.FMVDX, riscv.FMVXW, riscv.FMVWX,
		riscv.FEQD, riscv.FLTD, riscv.FLED:
		base = c.FPU
	case riscv.FDIVS, riscv.FDIVD:
		base = c.FDiv
	case riscv.FMADDS, riscv.FMADDD:
		base = c.FMA
	case riscv.VSETVLI:
		base = c.VSet
	case riscv.VLE32V, riscv.VLE64V, riscv.VSE32V, riscv.VSE64V:
		base = c.VMem
	case riscv.VADDVV, riscv.VADDVX, riscv.VMULVV, riscv.VMVVI, riscv.VMVVX:
		base = c.VALU
	case riscv.VFADDVV, riscv.VFMULVV, riscv.VFMACCVV, riscv.VFMACCVF, riscv.VFMVVF, riscv.VFMVFS:
		base = c.VFMA
	case riscv.VFREDUSUMVS:
		base = c.VReduce
	default:
		base = c.ALU
	}
	if taken {
		base += c.TakenExtra
	}
	return base
}
