package emu

import (
	"encoding/binary"
	"testing"

	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

// TestPokeInvalidatesDecodedCache exercises the runtime-rewriting contract:
// after the kernel patches code in place, the hart must execute the new
// bytes even if the old instruction was hot in the decode cache.
func TestPokeInvalidatesDecodedCache(t *testing.T) {
	// Loop: addi a0, a0, 1 ; j loop — run hot, then patch the addi into
	// addi a0, a0, 100 and check the increment changes.
	text := make([]byte, 8)
	binary.LittleEndian.PutUint32(text, riscv.MustEncode(
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1}))
	binary.LittleEndian.PutUint32(text[4:], riscv.MustEncode(
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -4}))
	mem := NewMemory()
	mem.Map(obj.TextBase, uint64(len(text)), obj.PermRX)
	mem.write(obj.TextBase, text)
	cpu := NewCPU(mem, riscv.RV64GC)
	cpu.PC = obj.TextBase

	if stop := cpu.Run(200); stop.Kind != StopLimit {
		t.Fatalf("warmup stop: %+v", stop)
	}
	before := cpu.X[riscv.A0]
	if before == 0 {
		t.Fatal("loop did not run")
	}

	var patch [4]byte
	binary.LittleEndian.PutUint32(patch[:], riscv.MustEncode(
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 100}))
	if !mem.Poke(obj.TextBase, patch[:]) {
		t.Fatal("poke failed")
	}
	cpu.PC = obj.TextBase
	a0 := cpu.X[riscv.A0]
	if stop, halted := cpu.Step(); halted {
		t.Fatalf("step after poke: %+v", stop)
	}
	if got := cpu.X[riscv.A0] - a0; got != 100 {
		t.Errorf("patched instruction added %d, want 100 (stale decode cache?)", got)
	}
}

// TestPokeUnmapped rejects pokes into unmapped space.
func TestPokeUnmapped(t *testing.T) {
	mem := NewMemory()
	if mem.Poke(0x1234, []byte{1}) {
		t.Error("poke into unmapped memory succeeded")
	}
}

// TestCrossPageAccess reads and writes spanning page boundaries.
func TestCrossPageAccess(t *testing.T) {
	mem := NewMemory()
	mem.Map(0x1000, 2*obj.PageSize, obj.PermRW)
	addr := uint64(0x1000 + obj.PageSize - 3)
	if err := mem.WriteUint64(addr, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := mem.ReadUint64(addr)
	if err != nil || v != 0x1122334455667788 {
		t.Errorf("cross-page u64 = %#x, %v", v, err)
	}
	// Partial overlap into unmapped space must fault with the right address.
	end := uint64(0x1000 + 2*obj.PageSize)
	if fa, ok := mem.Write(end-4, make([]byte, 8)); ok || fa != end {
		t.Errorf("overhanging write: fa=%#x ok=%v, want fault at %#x", fa, ok, end)
	}
}

// TestFetchAcrossPageBoundary executes a 4-byte instruction straddling two
// pages (possible with the compressed extension's 2-byte alignment).
func TestFetchAcrossPageBoundary(t *testing.T) {
	mem := NewMemory()
	mem.Map(obj.TextBase, 2*obj.PageSize, obj.PermRX)
	pc := obj.TextBase + obj.PageSize - 2
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], riscv.MustEncode(
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.Zero, Imm: 7}))
	mem.write(pc, w[:])
	cpu := NewCPU(mem, riscv.RV64GC)
	cpu.PC = pc
	if stop, halted := cpu.Step(); halted {
		t.Fatalf("stop: %+v", stop)
	}
	if cpu.X[riscv.A0] != 7 {
		t.Errorf("a0 = %d", cpu.X[riscv.A0])
	}
}

// TestSmileSemanticsRandomGP verifies the architectural property SMILE
// relies on for arbitrary gp values: executing only the jalr half jumps to
// gp+imm and leaves the return address in gp.
func TestSmileSemanticsRandomGP(t *testing.T) {
	for _, gp := range []uint64{0x31800, 0x40000, 0x7FFF0000} {
		mem := NewMemory()
		mem.Map(obj.TextBase, obj.PageSize, obj.PermRX)
		var w [4]byte
		binary.LittleEndian.PutUint32(w[:], riscv.MustEncode(
			riscv.Inst{Op: riscv.JALR, Rd: riscv.GP, Rs1: riscv.GP, Imm: 1544}))
		mem.write(obj.TextBase, w[:])
		cpu := NewCPU(mem, riscv.RV64GC)
		cpu.PC = obj.TextBase
		cpu.X[riscv.GP] = gp
		if stop, halted := cpu.Step(); halted {
			t.Fatalf("gp=%#x: %+v", gp, stop)
		}
		if cpu.PC != gp+1544 {
			t.Errorf("gp=%#x: jumped to %#x, want %#x", gp, cpu.PC, gp+1544)
		}
		if cpu.X[riscv.GP] != obj.TextBase+4 {
			t.Errorf("gp=%#x: return address %#x, want %#x", gp, cpu.X[riscv.GP], obj.TextBase+4)
		}
	}
}
