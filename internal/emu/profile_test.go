package emu_test

import (
	"strings"
	"testing"

	"github.com/eurosys26p57/chimera/internal/emu"
	"github.com/eurosys26p57/chimera/internal/riscv"
	"github.com/eurosys26p57/chimera/internal/telemetry"
	"github.com/eurosys26p57/chimera/internal/workload"
)

// TestGuestProfilerMatmul runs the matmul workload with the profiler on and
// asserts the hot block — the dot-product inner loop — is ranked first and
// symbolizes into main, and that the profiler's accounting exactly matches
// the block engine's.
func TestGuestProfilerMatmul(t *testing.T) {
	const n = 16
	img, err := workload.Matmul(n, false, true)
	if err != nil {
		t.Fatal(err)
	}
	mem := emu.NewMemory()
	mem.MapImage(img)
	cpu := emu.NewCPU(mem, riscv.RV64GC)
	// Pin the block tier: this test asserts per-block dispatch attribution,
	// which the trace tier legitimately coarsens (one sample per trace).
	cpu.TraceThreshold = 0
	cpu.Reset(img)
	cpu.Prof = telemetry.NewGuestProfiler()
	for {
		stop := cpu.Run(50_000_000)
		if stop.Kind == emu.StopEcall {
			break
		}
		if stop.Kind != emu.StopLimit {
			t.Fatalf("unexpected stop: %+v", stop)
		}
	}

	// Conservation: every block-retired instruction and every cycle must be
	// attributed to exactly one sampled block.
	cycles, instret := cpu.Prof.Totals()
	if instret != cpu.Blocks.Retired {
		t.Errorf("profiler instret %d != block-engine retired %d", instret, cpu.Blocks.Retired)
	}
	if cycles != cpu.Cycles {
		t.Errorf("profiler cycles %d != cpu cycles %d", cycles, cpu.Cycles)
	}

	st := emu.SymTableOf(img)
	if st == nil {
		t.Fatal("matmul image has no function symbols")
	}
	rep := cpu.Prof.Report(st, 5)
	if len(rep) == 0 {
		t.Fatal("empty profile report")
	}
	hot := rep[0]
	if hot.Rank != 1 {
		t.Errorf("hot rank = %d", hot.Rank)
	}
	// The workload's only function symbol is main; the dot loop is a body
	// block, so it must symbolize to a main-relative offset.
	if !strings.HasPrefix(hot.Location, "main+0x") {
		t.Errorf("hot block location = %q, want main+0x...", hot.Location)
	}
	// The dot-product inner loop body runs ~n^3 times (its last iteration
	// per (i,j) pair exits through a different block) — it must dominate.
	if hot.Dispatches < n*n*(n-1) {
		t.Errorf("hot block dispatches = %d, want >= %d", hot.Dispatches, n*n*(n-1))
	}
	if hot.CyclePct < 30 {
		t.Errorf("hot block cycle share = %.1f%%, want the dominant block", hot.CyclePct)
	}

	// Folded-stack output: one line per block, root prefix, hot line present.
	var folded strings.Builder
	cpu.Prof.FoldedStacks(&folded, "matmul", st)
	lines := strings.Split(strings.TrimSpace(folded.String()), "\n")
	if len(lines) != cpu.Prof.Blocks() {
		t.Errorf("folded lines = %d, blocks = %d", len(lines), cpu.Prof.Blocks())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "matmul;") {
			t.Errorf("folded line %q missing root", l)
		}
	}
}

// TestProfilerOffUnchanged checks a profiler-off run is architecturally
// identical to a profiler-on run (the hook only observes).
func TestProfilerOffUnchanged(t *testing.T) {
	img, err := workload.Matmul(8, false, true)
	if err != nil {
		t.Fatal(err)
	}
	run := func(prof bool) (uint64, uint64, uint64) {
		mem := emu.NewMemory()
		mem.MapImage(img)
		cpu := emu.NewCPU(mem, riscv.RV64GC)
		cpu.Reset(img)
		if prof {
			cpu.Prof = telemetry.NewGuestProfiler()
		}
		stop := cpu.Run(50_000_000)
		if stop.Kind != emu.StopEcall {
			t.Fatalf("unexpected stop: %+v", stop)
		}
		return cpu.Instret, cpu.Cycles, cpu.PC
	}
	i1, c1, p1 := run(false)
	i2, c2, p2 := run(true)
	if i1 != i2 || c1 != c2 || p1 != p2 {
		t.Errorf("profiler changed execution: (%d,%d,%#x) vs (%d,%d,%#x)", i1, c1, p1, i2, c2, p2)
	}
}
