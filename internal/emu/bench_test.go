// Emulated-MIPS benchmarks for the CPU hot loop: each workload runs under
// both the basic-block engine (the default) and the per-instruction
// reference loop (Interp), so the block engine's speedup is directly
// visible as the ratio of the two ns/inst numbers. scripts/bench.sh
// harvests these into BENCH_emu.json.
package emu_test

import (
	"testing"

	"github.com/eurosys26p57/chimera/internal/bench"
	"github.com/eurosys26p57/chimera/internal/emu"
	"github.com/eurosys26p57/chimera/internal/kernel"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
	"github.com/eurosys26p57/chimera/internal/telemetry"
	"github.com/eurosys26p57/chimera/internal/workload"
)

// runToCompletion drives a bare CPU until the program's exit ecall.
func runToCompletion(b *testing.B, cpu *emu.CPU) {
	b.Helper()
	for {
		stop := cpu.Run(50_000_000)
		switch stop.Kind {
		case emu.StopLimit:
			continue
		case emu.StopEcall, emu.StopBreak:
			return
		default:
			b.Fatalf("unexpected stop: %+v", stop)
		}
	}
}

// benchImage measures ns per retired instruction and emulated MIPS for one
// image on a bare hart.
func benchImage(b *testing.B, img *obj.Image, isa riscv.Ext, interp bool) {
	b.Helper()
	mem := emu.NewMemory()
	mem.MapImage(img)
	cpu := emu.NewCPU(mem, isa)
	cpu.Interp = interp
	b.ReportAllocs()
	b.ResetTimer()
	start := cpu.Instret
	for i := 0; i < b.N; i++ {
		cpu.Reset(img)
		runToCompletion(b, cpu)
	}
	insts := cpu.Instret - start
	sec := b.Elapsed().Seconds()
	if insts > 0 && sec > 0 {
		b.ReportMetric(float64(insts)/sec/1e6, "Minst/s")
		b.ReportMetric(sec*1e9/float64(insts), "ns/inst")
	}
}

func benchBoth(b *testing.B, build func() (*obj.Image, error), isa riscv.Ext) {
	b.Helper()
	img, err := build()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("blocks", func(b *testing.B) { benchImage(b, img, isa, false) })
	b.Run("interp", func(b *testing.B) { benchImage(b, img, isa, true) })
}

// BenchmarkCPURunFib measures the branchy integer hot loop.
func BenchmarkCPURunFib(b *testing.B) {
	benchBoth(b, func() (*obj.Image, error) {
		return workload.Fibonacci(1000, riscv.RV64GC, true)
	}, riscv.RV64GC)
}

// BenchmarkCPURunMatmulScalar measures the scalar FP kernel — the ISSUE's
// headline ≥3x acceptance number compares blocks vs interp here.
func BenchmarkCPURunMatmulScalar(b *testing.B) {
	benchBoth(b, func() (*obj.Image, error) {
		return workload.Matmul(24, false, true)
	}, riscv.RV64GC)
}

// BenchmarkCPURunMatmulRVV measures the vector kernel (the block engine
// falls back to the interpreter's exec for vector ops, so the win here is
// bounded by the scalar loop scaffolding around them).
func BenchmarkCPURunMatmulRVV(b *testing.B) {
	benchBoth(b, func() (*obj.Image, error) {
		return workload.Matmul(24, true, true)
	}, riscv.RV64GCV)
}

// BenchmarkCPURunProfiler measures the guest profiler's cost on the block
// engine's hot loop: "off" is the production default (one nil check per
// block dispatch), "on" pays a map update per dispatch. scripts/bench.sh
// derives profiler_overhead_pct from the two ns/inst numbers; the off case
// must stay within noise of the pre-profiler baseline.
func BenchmarkCPURunProfiler(b *testing.B) {
	img, err := workload.Matmul(24, false, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		prof bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			mem := emu.NewMemory()
			mem.MapImage(img)
			cpu := emu.NewCPU(mem, riscv.RV64GC)
			if mode.prof {
				cpu.Prof = telemetry.NewGuestProfiler()
			}
			b.ReportAllocs()
			b.ResetTimer()
			start := cpu.Instret
			for i := 0; i < b.N; i++ {
				cpu.Reset(img)
				runToCompletion(b, cpu)
			}
			insts := cpu.Instret - start
			sec := b.Elapsed().Seconds()
			if insts > 0 && sec > 0 {
				b.ReportMetric(float64(insts)/sec/1e6, "Minst/s")
				b.ReportMetric(sec*1e9/float64(insts), "ns/inst")
			}
		})
	}
}

// BenchmarkCPURunSPEC measures a SPEC-shaped synthetic driven through the
// kernel (syscalls, trampolines, indirect jumps), the shape the service's
// /run endpoint executes.
func BenchmarkCPURunSPEC(b *testing.B) {
	c := workload.SpecSuite()[0]
	c.Params.Rounds = 20
	img, err := workload.BuildSpec(c.Params, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		interp bool
	}{{"blocks", false}, {"interp", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var insts uint64
			for i := 0; i < b.N; i++ {
				v, err := kernel.VariantFromImage(img)
				if err != nil {
					b.Fatal(err)
				}
				p, err := kernel.NewProcess(c.Params.Name, []kernel.Variant{v})
				if err != nil {
					b.Fatal(err)
				}
				p.CPU.Interp = mode.interp
				if _, err := bench.RunOnCore(p, riscv.RV64GCV); err != nil {
					b.Fatal(err)
				}
				insts += p.CPU.Instret
			}
			sec := b.Elapsed().Seconds()
			if insts > 0 && sec > 0 {
				b.ReportMetric(float64(insts)/sec/1e6, "Minst/s")
				b.ReportMetric(sec*1e9/float64(insts), "ns/inst")
			}
		})
	}
}
