// Emulated-MIPS benchmarks for the CPU hot loop: each workload runs under
// the trace tier (the default), the basic-block tier alone, and the
// per-instruction reference loop (Interp), so each tier's speedup is
// directly visible as the ratio of the ns/inst numbers. scripts/bench.sh
// harvests these into BENCH_emu.json, and scripts/check.sh gates on every
// CPURun* benchmark reporting 0 allocs/op.
//
// All benchmarks measure the steady state of a long-lived server: the CPU
// (or kernel process) is built once, warmed until its translation caches
// stop changing, and then re-run via Reset. The timed region therefore
// contains no setup — page mapping and block/trace compilation amortize to
// zero, which is also what makes the hot loops allocation-free.
package emu_test

import (
	"testing"

	"github.com/eurosys26p57/chimera/internal/bench"
	"github.com/eurosys26p57/chimera/internal/emu"
	"github.com/eurosys26p57/chimera/internal/instrument"
	"github.com/eurosys26p57/chimera/internal/kernel"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
	"github.com/eurosys26p57/chimera/internal/telemetry"
	"github.com/eurosys26p57/chimera/internal/workload"
)

// tierModes is the three-way submode matrix shared by the benchmarks:
// traces (both tiers, the production default), blocks (trace tier off),
// interp (the per-instruction reference loop).
var tierModes = []struct {
	name      string
	interp    bool
	threshold uint32
}{
	{"traces", false, emu.DefaultTraceThreshold},
	{"blocks", false, 0},
	{"interp", true, 0},
}

// runToCompletion drives a bare CPU until the program's exit ecall.
func runToCompletion(b *testing.B, cpu *emu.CPU) {
	b.Helper()
	for {
		stop := cpu.Run(50_000_000)
		switch stop.Kind {
		case emu.StopLimit:
			continue
		case emu.StopEcall, emu.StopBreak:
			return
		default:
			b.Fatalf("unexpected stop: %+v", stop)
		}
	}
}

// warmStable re-runs work until two consecutive runs build no new blocks or
// traces (bounded): past that point the deterministic workload re-executes
// entirely from warm caches, so the timed region measures steady state. A
// block dispatched once per run crosses the promotion threshold only at run
// ~threshold, so with traces enabled the stability check is deferred past
// that point — otherwise the early lull between the hot-loop builds (run 1)
// and the cold-block builds (run ~64) looks stable and late builds leak
// allocations into the timed region.
func warmStable(threshold uint32, stats func() emu.BlockStats, run func()) {
	minRuns := 1
	if threshold > 0 {
		minRuns = int(threshold) + 4
	}
	var prev emu.BlockStats
	for i := 0; i < minRuns+100; i++ {
		run()
		s := stats()
		if i >= minRuns && s.Built == prev.Built && s.TracesBuilt == prev.TracesBuilt {
			return
		}
		prev = s
	}
}

// benchImage measures ns per retired instruction and emulated MIPS for one
// image on a bare hart.
func benchImage(b *testing.B, img *obj.Image, isa riscv.Ext, interp bool, threshold uint32) {
	b.Helper()
	mem := emu.NewMemory()
	mem.MapImage(img)
	cpu := emu.NewCPU(mem, isa)
	cpu.Interp = interp
	cpu.TraceThreshold = threshold
	warmStable(cpu.TraceThreshold, func() emu.BlockStats { return cpu.Blocks }, func() {
		cpu.Reset(img)
		runToCompletion(b, cpu)
	})
	b.ReportAllocs()
	b.ResetTimer()
	start := cpu.Instret
	for i := 0; i < b.N; i++ {
		cpu.Reset(img)
		runToCompletion(b, cpu)
	}
	insts := cpu.Instret - start
	sec := b.Elapsed().Seconds()
	if insts > 0 && sec > 0 {
		b.ReportMetric(float64(insts)/sec/1e6, "Minst/s")
		b.ReportMetric(sec*1e9/float64(insts), "ns/inst")
	}
}

func benchTiers(b *testing.B, build func() (*obj.Image, error), isa riscv.Ext) {
	b.Helper()
	img, err := build()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range tierModes {
		b.Run(mode.name, func(b *testing.B) { benchImage(b, img, isa, mode.interp, mode.threshold) })
	}
}

// BenchmarkCPURunFib measures the branchy integer hot loop.
func BenchmarkCPURunFib(b *testing.B) {
	benchTiers(b, func() (*obj.Image, error) {
		return workload.Fibonacci(1000, riscv.RV64GC, true)
	}, riscv.RV64GC)
}

// BenchmarkCPURunMatmulScalar measures the scalar FP kernel — the PR 2
// headline ≥3x acceptance number compares blocks vs interp here.
func BenchmarkCPURunMatmulScalar(b *testing.B) {
	benchTiers(b, func() (*obj.Image, error) {
		return workload.Matmul(24, false, true)
	}, riscv.RV64GC)
}

// BenchmarkCPURunMatmulRVV measures the vector kernel (the block engine
// falls back to the interpreter's exec for vector ops, so the win here is
// bounded by the scalar loop scaffolding around them).
func BenchmarkCPURunMatmulRVV(b *testing.B) {
	benchTiers(b, func() (*obj.Image, error) {
		return workload.Matmul(24, true, true)
	}, riscv.RV64GCV)
}

// BenchmarkCPURunProfiler measures the guest profiler's cost on the block
// engine's hot loop: "off" is the production default (one nil check per
// block dispatch), "on" pays a map update per dispatch. scripts/bench.sh
// derives profiler_overhead_pct from the two ns/inst numbers; the off case
// must stay within noise of the pre-profiler baseline.
func BenchmarkCPURunProfiler(b *testing.B) {
	img, err := workload.Matmul(24, false, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		prof bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			mem := emu.NewMemory()
			mem.MapImage(img)
			cpu := emu.NewCPU(mem, riscv.RV64GC)
			// Pin the block tier so the profiler numbers stay comparable
			// with the pre-trace baseline (per-block attribution).
			cpu.TraceThreshold = 0
			if mode.prof {
				cpu.Prof = telemetry.NewGuestProfiler()
			}
			warmStable(cpu.TraceThreshold, func() emu.BlockStats { return cpu.Blocks }, func() {
				cpu.Reset(img)
				runToCompletion(b, cpu)
			})
			b.ReportAllocs()
			b.ResetTimer()
			start := cpu.Instret
			for i := 0; i < b.N; i++ {
				cpu.Reset(img)
				runToCompletion(b, cpu)
			}
			insts := cpu.Instret - start
			sec := b.Elapsed().Seconds()
			if insts > 0 && sec > 0 {
				b.ReportMetric(float64(insts)/sec/1e6, "Minst/s")
				b.ReportMetric(sec*1e9/float64(insts), "ns/inst")
			}
		})
	}
}

// BenchmarkCPURunInstrument measures the guest-instrumentation hook costs
// on the branchy integer hot loop: "off" is a bare CPU (no Hooks attached),
// "nilhooks" attaches a Hooks struct with no observers installed — the
// fuzzing service's idle shape, which must compile to the exact same µop
// stream as "off" (scripts/check.sh gates nilhooks within 2% of off and 0
// allocs/op) — "coverage" pays an edge-map update per block/trace dispatch,
// and "cmplog" rebuilds translations with cmp-operand logging burned in.
// scripts/bench.sh derives the instrument overhead percentages from the
// ns/inst numbers.
func BenchmarkCPURunInstrument(b *testing.B) {
	img, err := workload.Fibonacci(1000, riscv.RV64GC, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		install func(*instrument.Hooks)
	}{
		{"off", nil},
		{"nilhooks", func(h *instrument.Hooks) {}},
		{"coverage", func(h *instrument.Hooks) { h.Cov = instrument.NewCoverage() }},
		{"cmplog", func(h *instrument.Hooks) { h.Cmp = instrument.NewCmpLog() }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			mem := emu.NewMemory()
			mem.MapImage(img)
			cpu := emu.NewCPU(mem, riscv.RV64GC)
			if mode.install != nil {
				h := &instrument.Hooks{}
				mode.install(h)
				cpu.SetHooks(h)
			}
			warmStable(cpu.TraceThreshold, func() emu.BlockStats { return cpu.Blocks }, func() {
				cpu.Reset(img)
				runToCompletion(b, cpu)
			})
			b.ReportAllocs()
			b.ResetTimer()
			start := cpu.Instret
			for i := 0; i < b.N; i++ {
				cpu.Reset(img)
				runToCompletion(b, cpu)
			}
			insts := cpu.Instret - start
			sec := b.Elapsed().Seconds()
			if insts > 0 && sec > 0 {
				b.ReportMetric(float64(insts)/sec/1e6, "Minst/s")
				b.ReportMetric(sec*1e9/float64(insts), "ns/inst")
			}
		})
	}
}

// BenchmarkCPURunSPEC measures a SPEC-shaped synthetic driven through the
// kernel (syscalls, trampolines, indirect jumps), the shape the service's
// /run endpoint executes. The process is built once and re-run via
// Process.Reset — the serving steady state.
func BenchmarkCPURunSPEC(b *testing.B) {
	c := workload.SpecSuite()[0]
	c.Params.Rounds = 20
	img, err := workload.BuildSpec(c.Params, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range tierModes {
		b.Run(mode.name, func(b *testing.B) {
			v, err := kernel.VariantFromImage(img)
			if err != nil {
				b.Fatal(err)
			}
			p, err := kernel.NewProcess(c.Params.Name, []kernel.Variant{v})
			if err != nil {
				b.Fatal(err)
			}
			p.CPU.Interp = mode.interp
			p.CPU.TraceThreshold = mode.threshold
			warmStable(mode.threshold, func() emu.BlockStats { return p.CPU.Blocks }, func() {
				p.Reset()
				if _, err := bench.RunOnCore(p, riscv.RV64GCV); err != nil {
					b.Fatal(err)
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			start := p.CPU.Instret
			for i := 0; i < b.N; i++ {
				p.Reset()
				if _, err := bench.RunOnCore(p, riscv.RV64GCV); err != nil {
					b.Fatal(err)
				}
			}
			insts := p.CPU.Instret - start
			sec := b.Elapsed().Seconds()
			if insts > 0 && sec > 0 {
				b.ReportMetric(float64(insts)/sec/1e6, "Minst/s")
				b.ReportMetric(sec*1e9/float64(insts), "ns/inst")
			}
		})
	}
}
