// Package emu implements the simulated RISC-V hardware Chimera runs on: a
// paged memory with R/W/X permissions, and RV64IMFDCV cores with per-core
// extension masks, precise deterministic faults and a cycle cost model.
//
// The substrate replaces the paper's SpacemiT K1 / SOPHGO SG2042 boards. It
// is deliberately architectural rather than microarchitectural: what matters
// to Chimera is that jumping into a non-executable data segment raises a
// segmentation fault, that reserved encodings raise illegal-instruction
// faults, and that instruction costs accumulate so rewriting overhead is
// measurable.
package emu

import (
	"encoding/binary"
	"fmt"

	"github.com/eurosys26p57/chimera/internal/obj"
)

// Page is one 4KiB frame plus its mapping permission. Pages are shared by
// reference between address spaces: Chimera's MMViews map the same data
// frames into every view while giving each view its own code frames (§4.3).
type Page struct {
	Data [obj.PageSize]byte
	Perm obj.Perm

	// gen counts Pokes into this frame. Because frames are shared by
	// reference, decoded-code caches (icache, blocks, traces) validate
	// against it in addition to the per-address-space generation: a Poke
	// through one Memory invalidates cached translations of every CPU whose
	// address space maps the same frame.
	gen uint64
}

// Gen returns the frame's code-patch generation.
func (p *Page) Gen() uint64 { return p.gen }

// Memory is a sparse paged address space. A one-entry translation cache
// keeps the hot-loop lookup off the page map.
type Memory struct {
	pages map[uint64]*Page

	lastPN   uint64
	lastPage *Page

	lastFetchPN   uint64
	lastFetchPage *Page

	// gen counts every mapping/code mutation — the coarse observable
	// exposed by Gen() for tests and diagnostics.
	gen uint64

	// mapGen counts only mapping mutations (Map/MapPage/ShareFrom).
	// Translation caches key on (mapGen, per-frame patch generations): a
	// remap invalidates every cached translation of this address space,
	// while a Poke invalidates only translations spanning the poked frames
	// — in every address space sharing them.
	mapGen uint64
}

// Gen returns the mutation generation of the address space.
func (m *Memory) Gen() uint64 { return m.gen }

// MapGen returns the mapping-mutation generation of the address space.
func (m *Memory) MapGen() uint64 { return m.mapGen }

// Poke writes bytes bypassing page permissions — the kernel's code-patching
// primitive (runtime rewriting, §4.3). It bumps the generation so decoded
// instruction and basic-block caches drop stale entries. The whole range is
// validated before any byte is written: a poke that touches an unmapped page
// writes nothing, so a false return never leaves half-patched code behind a
// stale generation.
func (m *Memory) Poke(addr uint64, data []byte) bool {
	if len(data) == 0 {
		return true
	}
	for pn := pageOf(addr); pn <= pageOf(addr+uint64(len(data))-1); pn++ {
		if _, ok := m.pages[pn]; !ok {
			return false
		}
	}
	for len(data) > 0 {
		p := m.pages[pageOf(addr)]
		off := addr & (obj.PageSize - 1)
		n := copy(p.Data[off:], data)
		p.gen++
		data = data[n:]
		addr += uint64(n)
	}
	m.gen++
	return true
}

// RestoreBytes writes bytes bypassing permissions without bumping any
// generation. It is a loader-grade primitive for resetting *data* frames to
// a known image between runs (kernel.Process.Reset): because no generation
// moves, cached code translations stay warm, so it must never be used to
// change bytes that may be executed — that is what Poke is for.
func (m *Memory) RestoreBytes(addr uint64, data []byte) bool {
	if len(data) == 0 {
		return true
	}
	for pn := pageOf(addr); pn <= pageOf(addr+uint64(len(data))-1); pn++ {
		if _, ok := m.pages[pn]; !ok {
			return false
		}
	}
	m.write(addr, data)
	return true
}

// ZeroRange zeroes [addr, addr+size) bypassing permissions without bumping
// any generation, with the same data-frames-only contract as RestoreBytes.
// Unmapped pages inside the range are skipped.
func (m *Memory) ZeroRange(addr, size uint64) {
	for size > 0 {
		off := addr & (obj.PageSize - 1)
		n := uint64(obj.PageSize) - off
		if n > size {
			n = size
		}
		if p, ok := m.pages[pageOf(addr)]; ok {
			clear(p.Data[off : off+n])
		}
		addr += n
		size -= n
	}
}

// NewMemory returns an empty address space.
func NewMemory() *Memory { return &Memory{pages: make(map[uint64]*Page)} }

func pageOf(addr uint64) uint64 { return addr >> 12 }

// Page returns the frame mapped at the page containing addr.
func (m *Memory) Page(addr uint64) (*Page, bool) {
	p, ok := m.pages[pageOf(addr)]
	return p, ok
}

// MapPage installs an existing frame at the page containing addr, enabling
// frame sharing between address spaces.
func (m *Memory) MapPage(addr uint64, p *Page) {
	m.pages[pageOf(addr)] = p
	m.lastPage, m.lastFetchPage = nil, nil
	m.gen++
	m.mapGen++
}

// lookup resolves a page through the one-entry caches (instruction fetches
// and data accesses stream through separate entries so they don't thrash).
func (m *Memory) lookup(pn uint64, fetch bool) (*Page, bool) {
	if fetch {
		if m.lastFetchPage != nil && m.lastFetchPN == pn {
			return m.lastFetchPage, true
		}
	} else if m.lastPage != nil && m.lastPN == pn {
		return m.lastPage, true
	}
	p, ok := m.pages[pn]
	if ok {
		if fetch {
			m.lastFetchPN, m.lastFetchPage = pn, p
		} else {
			m.lastPN, m.lastPage = pn, p
		}
	}
	return p, ok
}

// Map allocates zeroed frames covering [addr, addr+size) with the given
// permission. Partial pages are rounded out.
func (m *Memory) Map(addr, size uint64, perm obj.Perm) {
	for pn := pageOf(addr); pn <= pageOf(addr+size-1); pn++ {
		if _, ok := m.pages[pn]; !ok {
			m.pages[pn] = &Page{Perm: perm}
		} else {
			m.pages[pn].Perm |= perm
		}
	}
	m.lastPage, m.lastFetchPage = nil, nil
	m.gen++
	m.mapGen++
}

// MapSection maps a section's bytes at its address.
func (m *Memory) MapSection(s *obj.Section) {
	if len(s.Data) == 0 {
		return
	}
	m.Map(s.Addr, uint64(len(s.Data)), s.Perm)
	m.write(s.Addr, s.Data)
}

// MapImage maps every section of an image plus a stack.
func (m *Memory) MapImage(img *obj.Image) {
	for _, s := range img.Sections {
		m.MapSection(s)
	}
	m.Map(obj.StackTop-obj.StackSize, obj.StackSize, obj.PermRW)
}

// write stores bytes without permission checks (loader path).
func (m *Memory) write(addr uint64, data []byte) {
	for len(data) > 0 {
		p := m.pages[pageOf(addr)]
		off := addr & (obj.PageSize - 1)
		n := copy(p.Data[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// access performs a checked read or write of n bytes at addr. It returns
// the address that faulted, if any.
func (m *Memory) access(addr uint64, buf []byte, write bool, need obj.Perm) (uint64, bool) {
	a := addr
	for len(buf) > 0 {
		p, ok := m.lookup(pageOf(a), need == obj.PermX)
		if !ok || p.Perm&need == 0 {
			return a, false
		}
		off := a & (obj.PageSize - 1)
		var n int
		if write {
			n = copy(p.Data[off:], buf)
		} else {
			n = copy(buf, p.Data[off:])
		}
		buf = buf[n:]
		a += uint64(n)
	}
	return 0, true
}

// The loadU/storeU/fetchU helpers are the in-page fast paths the block
// engine dispatches through: when an access lies entirely inside one page
// (which every aligned access does), they go straight through the one-entry
// translation cache to the frame bytes, skipping access()'s multi-page copy
// loop and the intermediate buffer. They return ok=false for any access
// that crosses a page, is unmapped, or lacks permission — callers fall back
// to Read/Write/Fetch, which re-derive the precise faulting address.

func (m *Memory) loadU64(addr uint64) (uint64, bool) {
	off := addr & (obj.PageSize - 1)
	if off > obj.PageSize-8 {
		return 0, false
	}
	p, ok := m.lookup(pageOf(addr), false)
	if !ok || p.Perm&obj.PermR == 0 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(p.Data[off:]), true
}

func (m *Memory) loadU32(addr uint64) (uint32, bool) {
	off := addr & (obj.PageSize - 1)
	if off > obj.PageSize-4 {
		return 0, false
	}
	p, ok := m.lookup(pageOf(addr), false)
	if !ok || p.Perm&obj.PermR == 0 {
		return 0, false
	}
	return binary.LittleEndian.Uint32(p.Data[off:]), true
}

func (m *Memory) storeU64(addr uint64, v uint64) bool {
	off := addr & (obj.PageSize - 1)
	if off > obj.PageSize-8 {
		return false
	}
	p, ok := m.lookup(pageOf(addr), false)
	if !ok || p.Perm&obj.PermW == 0 {
		return false
	}
	binary.LittleEndian.PutUint64(p.Data[off:], v)
	return true
}

func (m *Memory) storeU32(addr uint64, v uint32) bool {
	off := addr & (obj.PageSize - 1)
	if off > obj.PageSize-4 {
		return false
	}
	p, ok := m.lookup(pageOf(addr), false)
	if !ok || p.Perm&obj.PermW == 0 {
		return false
	}
	binary.LittleEndian.PutUint32(p.Data[off:], v)
	return true
}

func (m *Memory) fetchU16(addr uint64) (uint16, bool) {
	off := addr & (obj.PageSize - 1)
	if off > obj.PageSize-2 {
		return 0, false
	}
	p, ok := m.lookup(pageOf(addr), true)
	if !ok || p.Perm&obj.PermX == 0 {
		return 0, false
	}
	return binary.LittleEndian.Uint16(p.Data[off:]), true
}

// Read copies n bytes at addr into buf, checking read permission.
func (m *Memory) Read(addr uint64, buf []byte) (uint64, bool) {
	return m.access(addr, buf, false, obj.PermR)
}

// Write copies buf to addr, checking write permission.
func (m *Memory) Write(addr uint64, buf []byte) (uint64, bool) {
	return m.access(addr, buf, true, obj.PermW)
}

// Fetch reads up to 4 instruction bytes at addr, checking execute
// permission. fewer than 4 bytes are returned only at the edge of the
// mapped region.
func (m *Memory) Fetch(addr uint64, buf []byte) (uint64, bool) {
	return m.access(addr, buf, false, obj.PermX)
}

// ReadUint64 loads a little-endian u64.
func (m *Memory) ReadUint64(addr uint64) (uint64, error) {
	var b [8]byte
	if fa, ok := m.Read(addr, b[:]); !ok {
		return 0, fmt.Errorf("emu: read fault at %#x", fa)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteUint64 stores a little-endian u64.
func (m *Memory) WriteUint64(addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if fa, ok := m.Write(addr, b[:]); !ok {
		return fmt.Errorf("emu: write fault at %#x", fa)
	}
	return nil
}

// Clone returns a new address space sharing no frames with m (deep copy).
func (m *Memory) Clone() *Memory {
	out := NewMemory()
	for pn, p := range m.pages {
		cp := *p
		out.pages[pn] = &cp
	}
	return out
}

// ShareFrom maps every frame of src whose page falls inside [addr,
// addr+size) into m by reference. Used to share data segments between
// MMViews.
func (m *Memory) ShareFrom(src *Memory, addr, size uint64) {
	for pn := pageOf(addr); pn <= pageOf(addr+size-1); pn++ {
		if p, ok := src.pages[pn]; ok {
			m.pages[pn] = p
		}
	}
	m.lastPage, m.lastFetchPage = nil, nil
	m.gen++
	m.mapGen++
}
