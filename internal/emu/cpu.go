package emu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/eurosys26p57/chimera/internal/instrument"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
	"github.com/eurosys26p57/chimera/internal/telemetry"
)

// FaultKind classifies a deterministic fault, mirroring the signals the
// paper's modified kernel routes (§4.3).
type FaultKind uint8

// Fault kinds.
const (
	FaultNone    FaultKind = iota
	FaultIllegal           // SIGILL: illegal/reserved encoding or unsupported extension
	FaultAccess            // SIGSEGV: unmapped address or permission violation
)

func (k FaultKind) String() string {
	switch k {
	case FaultIllegal:
		return "SIGILL"
	case FaultAccess:
		return "SIGSEGV"
	}
	return "none"
}

// Fault is a precise fault: PC is the instruction that faulted (for an
// execute-permission fault, the fetch address itself), Addr the offending
// memory address.
type Fault struct {
	Kind FaultKind
	PC   uint64
	Addr uint64
	Err  error
}

func (f Fault) String() string {
	return fmt.Sprintf("%v at pc=%#x addr=%#x (%v)", f.Kind, f.PC, f.Addr, f.Err)
}

// IllegalInst returns the typed illegal-encoding error behind the fault, if
// any, so reports can show the raw offending bits rather than a message.
func (f Fault) IllegalInst() (*riscv.IllegalInstError, bool) {
	var ie *riscv.IllegalInstError
	if errors.As(f.Err, &ie) {
		return ie, true
	}
	return nil, false
}

// StopKind says why CPU.Run returned.
type StopKind uint8

// Stop kinds.
const (
	StopLimit  StopKind = iota // per-call instruction limit exhausted
	StopEcall                  // ecall: the kernel must service a syscall
	StopBreak                  // ebreak: trap-based trampoline or breakpoint
	StopFault                  // deterministic fault raised
	StopBudget                 // hard MaxInstret budget reached (watchdog)
)

// Stop reports why execution paused.
type Stop struct {
	Kind  StopKind
	Fault Fault // valid when Kind == StopFault
}

// Vec is one vector register (VLEN bits).
type Vec [riscv.VLenBytes]byte

// CPU is one simulated hart. ISA is the set of extensions the core
// implements; executing an instruction outside the set raises FaultIllegal,
// which is exactly the fault-and-migrate / runtime-rewriting trigger the
// paper builds on.
type CPU struct {
	X  [32]uint64
	F  [32]uint64
	V  [32]Vec
	VL uint64 // active vector length (elements)
	VT int64  // vtype

	PC  uint64
	Mem *Memory
	ISA riscv.Ext

	Cost    *CostModel
	Cycles  uint64
	Instret uint64

	// Hooks is the instrumentation hook set (nil = uninstrumented).
	// Hooks.Indirect intercepts every indirect jump (jalr) before it
	// retires — it may rewrite the target and charge extra cycles; it is
	// how regeneration baselines' inline target checks (Safer's encoded
	// pointer checks, Multiverse's tables) are modeled on the simulated
	// hardware, with Hooks.IndirectCalls tallying invocations (the Table 2
	// metric). The pure observers (Cov/Cmp/Mem) feed the fuzzing service.
	// Install with SetHooks — observer participation is burned into µops at
	// translation time, so the translation caches are keyed on the observer
	// set (the obs mask below). Mutating an already-installed Hooks value's
	// observer fields requires RefreshHooks.
	Hooks *instrument.Hooks

	// LastInst is the most recently retired instruction (diagnostics).
	LastInst riscv.Inst

	// Interp forces Run through the historical per-instruction loop instead
	// of the basic-block engine. The two are architecturally identical; the
	// flag exists for differential testing and baseline benchmarks.
	Interp bool

	// MaxInstret, when nonzero, is a hard lifetime retirement budget — the
	// watchdog against unbounded emulations. Run never retires the
	// (MaxInstret+1)-th instruction: once Instret reaches the budget it
	// returns StopBudget, at exactly the same architectural point on both
	// engines. Zero means unbounded.
	MaxInstret uint64

	// Blocks tallies translation events for both tiers (block.go).
	Blocks BlockStats

	// TraceThreshold is the block dispatch count that promotes a chain into
	// a superblock trace (trace.go). Zero disables the trace tier; NewCPU
	// sets DefaultTraceThreshold.
	TraceThreshold uint32

	// Prof, when non-nil, accumulates per-block cycle/instret samples on
	// every block dispatch (the guest profiler). Nil means off: the block
	// engine pays exactly one nil check per dispatch.
	Prof *telemetry.GuestProfiler

	// icache is a direct-mapped decoded-instruction cache, invalidated by
	// the mapping generation and the code frame's patch generation.
	icache [4096]icacheEntry

	// bcache is the 2-way set-associative basic-block cache (block.go):
	// blockCacheSize sets of blockCacheWays ways, MRU first.
	bcache [blockCacheSize * blockCacheWays]*block

	// freeBlocks/freeTraces are the per-CPU recycling arenas: evicted and
	// invalidated translations park here (µop backing arrays intact) so
	// steady-state rebuild churn allocates nothing.
	freeBlocks []*block
	freeTraces []*trace

	// obs is the observer mask compiled into translations (hookCmp |
	// hookMem bits, block.go). Blocks and traces record the mask they were
	// built under and are revalidated against it, so flipping observers
	// rebuilds translations instead of running stale µop streams. The
	// coverage observer needs no µop changes (it fires per dispatch) and so
	// does not participate in the mask.
	obs uint8
}

// SetHooks installs an instrumentation hook set (nil uninstalls) and
// recomputes the translation observer mask. Translations built under a
// different observer set revalidate lazily — no eager cache flush.
func (c *CPU) SetHooks(h *instrument.Hooks) {
	c.Hooks = h
	c.RefreshHooks()
}

// RefreshHooks recomputes the observer mask after the installed Hooks
// value's observer fields were mutated in place.
func (c *CPU) RefreshHooks() {
	c.obs = 0
	if h := c.Hooks; h != nil {
		if h.Cmp != nil {
			c.obs |= hookCmp
		}
		if h.Mem != nil {
			c.obs |= hookMem
		}
	}
}

type icacheEntry struct {
	pc     uint64
	mapGen uint64
	mem    *Memory
	pg     *Page
	pgen   uint64
	inst   riscv.Inst
	ok     bool
}

// NewCPU returns a hart with the default cost model and the trace tier
// enabled at the default promotion threshold.
func NewCPU(mem *Memory, isa riscv.Ext) *CPU {
	return &CPU{Mem: mem, ISA: isa, Cost: &DefaultCost, TraceThreshold: DefaultTraceThreshold}
}

// Reset prepares the hart to run an image: pc at the entry, sp at the stack
// top, gp at the image's anchor.
func (c *CPU) Reset(img *obj.Image) {
	c.X = [32]uint64{}
	c.F = [32]uint64{}
	c.V = [32]Vec{}
	c.VL, c.VT = 0, 0
	c.PC = img.Entry
	c.X[riscv.SP] = obj.StackTop
	c.X[riscv.GP] = img.GP
}

// fault constructs a fault stop.
func (c *CPU) fault(kind FaultKind, addr uint64, err error) (Stop, bool) {
	return Stop{Kind: StopFault, Fault: Fault{Kind: kind, PC: c.PC, Addr: addr, Err: err}}, true
}

func f64(bits uint64) float64 { return math.Float64frombits(bits) }
func f64b(v float64) uint64   { return math.Float64bits(v) }
func f32of(bits uint64) float32 {
	// NaN-boxed single: valid when the upper 32 bits are all ones.
	return math.Float32frombits(uint32(bits))
}
func f32b(v float32) uint64 { return 0xFFFFFFFF_00000000 | uint64(math.Float32bits(v)) }

// Sentinel fault causes for the hot paths. Fault classification carries
// Kind/PC/Addr; building a fresh message per fault would make the fault
// paths allocate, which fault-heavy guests (SMILE recovery, trampoline
// storms) would pay per event.
var (
	errFetch  = errors.New("instruction fetch")
	errFetch2 = errors.New("instruction fetch (second parcel)")
	errLoad   = errors.New("load access")
	errStore  = errors.New("store access")
)

// Step executes one instruction. It returns (stop, true) when the kernel
// must intervene; otherwise execution advanced normally.
func (c *CPU) Step() (Stop, bool) {
	if e := &c.icache[(c.PC>>1)&4095]; e.ok && e.pc == c.PC && e.mem == c.Mem &&
		e.mapGen == c.Mem.mapGen && e.pg.gen == e.pgen {
		if ext := e.inst.Extension(); !c.ISA.Has(ext) {
			return c.fault(FaultIllegal, c.PC,
				fmt.Errorf("unsupported extension %v for %s", ext, e.inst))
		}
		return c.exec(e.inst)
	}
	var ibuf [4]byte
	if fa, ok := c.Mem.Fetch(c.PC, ibuf[:2]); !ok {
		return c.fault(FaultAccess, fa, errFetch)
	}
	parcel := binary.LittleEndian.Uint16(ibuf[:2])
	ilen, err := riscv.ParcelLen(parcel)
	if err != nil {
		return c.fault(FaultIllegal, c.PC, err)
	}
	var inst riscv.Inst
	if ilen == 2 {
		inst, err = riscv.DecodeCompressed(parcel)
		if err == nil && !c.ISA.Has(riscv.ExtC) {
			err = &riscv.IllegalInstError{
				Raw: uint32(parcel), Width: 2, Reason: riscv.ErrIllegal,
				Detail: "compressed instruction on core without C",
			}
		}
	} else {
		if fa, ok := c.Mem.Fetch(c.PC+2, ibuf[2:4]); !ok {
			return c.fault(FaultAccess, fa, errFetch2)
		}
		inst, err = riscv.Decode32(binary.LittleEndian.Uint32(ibuf[:4]))
	}
	if err != nil {
		return c.fault(FaultIllegal, c.PC, err)
	}
	// Cache the decode keyed on the code frame's patch generation, so a
	// Poke through *any* address space sharing the frame invalidates it.
	// Instructions straddling a page boundary are not cached (two frames
	// would need tracking for a case that essentially never recurs hot).
	if off := c.PC & (1<<12 - 1); off+uint64(inst.Len) <= 1<<12 {
		if pg, ok := c.Mem.Page(c.PC); ok {
			c.icache[(c.PC>>1)&4095] = icacheEntry{
				pc: c.PC, mapGen: c.Mem.mapGen, mem: c.Mem,
				pg: pg, pgen: pg.gen, inst: inst, ok: true,
			}
		}
	}
	if ext := inst.Extension(); !c.ISA.Has(ext) {
		return c.fault(FaultIllegal, c.PC,
			fmt.Errorf("unsupported extension %v for %s", ext, inst))
	}
	return c.exec(inst)
}

// Run executes until a stop condition or until limit instructions retire.
// The hot path dispatches whole predecoded basic blocks (block.go); setting
// Interp forces the per-instruction reference loop instead. When MaxInstret
// is set, the per-call limit is clamped to the remaining budget, so the
// budget check costs nothing in the dispatch loops and both engines stop at
// the identical instruction.
func (c *CPU) Run(limit uint64) Stop {
	if c.MaxInstret != 0 {
		if c.Instret >= c.MaxInstret {
			return Stop{Kind: StopBudget}
		}
		if rem := c.MaxInstret - c.Instret; rem <= limit {
			stop := c.dispatch(rem)
			if stop.Kind == StopLimit && c.Instret >= c.MaxInstret {
				stop.Kind = StopBudget
			}
			return stop
		}
	}
	return c.dispatch(limit)
}

func (c *CPU) dispatch(limit uint64) Stop {
	if c.Interp {
		return c.RunInterp(limit)
	}
	return c.runBlocks(limit)
}

// RunInterp is the per-instruction reference loop — the pre-block-engine
// Run. The block engine is required to be architecturally indistinguishable
// from it (same X/F/V/PC/Instret/Cycles trajectory, same faults).
func (c *CPU) RunInterp(limit uint64) Stop {
	for n := uint64(0); n < limit; n++ {
		if stop, halted := c.Step(); halted {
			return stop
		}
	}
	return Stop{Kind: StopLimit}
}

// retire finalizes a normally-executed instruction.
func (c *CPU) retire(inst riscv.Inst, nextPC uint64, taken bool) (Stop, bool) {
	c.X[0] = 0
	c.PC = nextPC
	c.Cycles += c.Cost.Cost(inst, taken)
	c.Instret++
	c.LastInst = inst
	return Stop{}, false
}

// memLoad performs a checked n-byte little-endian load at addr, returning
// the (optionally sign-extended) value or the faulting address.
func (c *CPU) memLoad(addr uint64, n int, signed bool) (v, fa uint64, ok bool) {
	var buf [8]byte
	if fa, ok := c.Mem.Read(addr, buf[:n]); !ok {
		return 0, fa, false
	}
	v = binary.LittleEndian.Uint64(buf[:])
	if signed {
		shift := uint(64 - 8*n)
		v = uint64(int64(v<<shift) >> shift)
	}
	return v, 0, true
}

// memStore performs a checked n-byte little-endian store at addr.
func (c *CPU) memStore(addr, val uint64, n int) (fa uint64, ok bool) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	return c.Mem.Write(addr, buf[:n])
}

// The exec helpers below used to be per-call closures; they are methods so
// the interpreter and the block engine share one allocation-free hot path.

// alu writes an ALU result and retires.
func (c *CPU) alu(inst riscv.Inst, next uint64, v uint64) (Stop, bool) {
	c.X[inst.Rd] = v
	return c.retire(inst, next, false)
}

// aluW writes a sign-extended 32-bit result and retires.
func (c *CPU) aluW(inst riscv.Inst, next uint64, v int64) (Stop, bool) {
	c.X[inst.Rd] = uint64(int64(int32(v)))
	return c.retire(inst, next, false)
}

// branch retires a conditional branch. The interpreter checks the cmp
// observer at run time so both engines log identically.
func (c *CPU) branch(inst riscv.Inst, next uint64, cond bool) (Stop, bool) {
	if h := c.Hooks; h != nil && h.Cmp != nil {
		h.Cmp.Log(c.PC, c.X[inst.Rs1], c.X[inst.Rs2])
	}
	if cond {
		return c.retire(inst, c.PC+uint64(inst.Imm), true)
	}
	return c.retire(inst, next, false)
}

// execLoad retires a scalar load. Accesses are logged when attempted so a
// faulting access appears as the mem trace's final entry.
func (c *CPU) execLoad(inst riscv.Inst, next uint64, n int, signed bool) (Stop, bool) {
	addr := c.X[inst.Rs1] + uint64(inst.Imm)
	if h := c.Hooks; h != nil && h.Mem != nil {
		h.Mem.Access(c.PC, addr, uint8(n), false)
	}
	v, fa, ok := c.memLoad(addr, n, signed)
	if !ok {
		return c.fault(FaultAccess, fa, errLoad)
	}
	c.X[inst.Rd] = v
	return c.retire(inst, next, false)
}

// execStore retires a scalar store.
func (c *CPU) execStore(inst riscv.Inst, next uint64, n int) (Stop, bool) {
	addr := c.X[inst.Rs1] + uint64(inst.Imm)
	if h := c.Hooks; h != nil && h.Mem != nil {
		h.Mem.Access(c.PC, addr, uint8(n), true)
	}
	if fa, ok := c.memStore(addr, c.X[inst.Rs2], n); !ok {
		return c.fault(FaultAccess, fa, errStore)
	}
	return c.retire(inst, next, false)
}

// execJALR retires an indirect jump, routing through Hooks.Indirect.
func (c *CPU) execJALR(inst riscv.Inst, next uint64) (Stop, bool) {
	target := (c.X[inst.Rs1] + uint64(inst.Imm)) &^ 1
	if h := c.Hooks; h != nil && h.Indirect != nil {
		newTarget, extra := h.Indirect(c.PC, target)
		target = newTarget
		c.Cycles += extra
		h.IndirectCalls++
	}
	c.X[inst.Rd] = next
	return c.retire(inst, target, true)
}

func (c *CPU) exec(inst riscv.Inst) (Stop, bool) {
	x := &c.X
	rs1, rs2 := inst.Rs1, inst.Rs2
	imm := inst.Imm
	next := c.PC + uint64(inst.Len)
	s1, s2 := int64(x[rs1]), int64(x[rs2])
	u1, u2 := x[rs1], x[rs2]

	switch inst.Op {
	case riscv.LUI:
		return c.alu(inst, next, uint64(imm<<12))
	case riscv.AUIPC:
		return c.alu(inst, next, c.PC+uint64(imm<<12))
	case riscv.JAL:
		target := c.PC + uint64(imm)
		x[inst.Rd] = next
		return c.retire(inst, target, true)
	case riscv.JALR:
		return c.execJALR(inst, next)
	case riscv.BEQ:
		return c.branch(inst, next, u1 == u2)
	case riscv.BNE:
		return c.branch(inst, next, u1 != u2)
	case riscv.BLT:
		return c.branch(inst, next, s1 < s2)
	case riscv.BGE:
		return c.branch(inst, next, s1 >= s2)
	case riscv.BLTU:
		return c.branch(inst, next, u1 < u2)
	case riscv.BGEU:
		return c.branch(inst, next, u1 >= u2)
	case riscv.LB:
		return c.execLoad(inst, next, 1, true)
	case riscv.LH:
		return c.execLoad(inst, next, 2, true)
	case riscv.LW:
		return c.execLoad(inst, next, 4, true)
	case riscv.LD:
		return c.execLoad(inst, next, 8, true)
	case riscv.LBU:
		return c.execLoad(inst, next, 1, false)
	case riscv.LHU:
		return c.execLoad(inst, next, 2, false)
	case riscv.LWU:
		return c.execLoad(inst, next, 4, false)
	case riscv.SB:
		return c.execStore(inst, next, 1)
	case riscv.SH:
		return c.execStore(inst, next, 2)
	case riscv.SW:
		return c.execStore(inst, next, 4)
	case riscv.SD:
		return c.execStore(inst, next, 8)
	case riscv.ADDI:
		return c.alu(inst, next, u1+uint64(imm))
	case riscv.SLTI:
		if s1 < imm {
			return c.alu(inst, next, 1)
		}
		return c.alu(inst, next, 0)
	case riscv.SLTIU:
		if u1 < uint64(imm) {
			return c.alu(inst, next, 1)
		}
		return c.alu(inst, next, 0)
	case riscv.XORI:
		return c.alu(inst, next, u1^uint64(imm))
	case riscv.ORI:
		return c.alu(inst, next, u1|uint64(imm))
	case riscv.ANDI:
		return c.alu(inst, next, u1&uint64(imm))
	case riscv.SLLI:
		return c.alu(inst, next, u1<<uint(imm))
	case riscv.SRLI:
		return c.alu(inst, next, u1>>uint(imm))
	case riscv.SRAI:
		return c.alu(inst, next, uint64(s1>>uint(imm)))
	case riscv.ADD:
		return c.alu(inst, next, u1+u2)
	case riscv.SUB:
		return c.alu(inst, next, u1-u2)
	case riscv.SLL:
		return c.alu(inst, next, u1<<(u2&63))
	case riscv.SLT:
		if s1 < s2 {
			return c.alu(inst, next, 1)
		}
		return c.alu(inst, next, 0)
	case riscv.SLTU:
		if u1 < u2 {
			return c.alu(inst, next, 1)
		}
		return c.alu(inst, next, 0)
	case riscv.XOR:
		return c.alu(inst, next, u1^u2)
	case riscv.SRL:
		return c.alu(inst, next, u1>>(u2&63))
	case riscv.SRA:
		return c.alu(inst, next, uint64(s1>>(u2&63)))
	case riscv.OR:
		return c.alu(inst, next, u1|u2)
	case riscv.AND:
		return c.alu(inst, next, u1&u2)
	case riscv.ADDIW:
		return c.aluW(inst, next, s1+imm)
	case riscv.SLLIW:
		return c.aluW(inst, next, int64(int32(u1)<<uint(imm)))
	case riscv.SRLIW:
		return c.aluW(inst, next, int64(int32(uint32(u1)>>uint(imm))))
	case riscv.SRAIW:
		return c.aluW(inst, next, int64(int32(u1)>>uint(imm)))
	case riscv.ADDW:
		return c.aluW(inst, next, s1+s2)
	case riscv.SUBW:
		return c.aluW(inst, next, s1-s2)
	case riscv.SLLW:
		return c.aluW(inst, next, int64(int32(u1)<<(u2&31)))
	case riscv.SRLW:
		return c.aluW(inst, next, int64(int32(uint32(u1)>>(u2&31))))
	case riscv.SRAW:
		return c.aluW(inst, next, int64(int32(u1)>>(u2&31)))
	case riscv.FENCE:
		return c.retire(inst, next, false)
	case riscv.ECALL:
		// The kernel services the call and advances the pc.
		return Stop{Kind: StopEcall}, true
	case riscv.EBREAK:
		return Stop{Kind: StopBreak}, true

	case riscv.MUL:
		return c.alu(inst, next, u1*u2)
	case riscv.MULH:
		hi, _ := mul64(s1, s2)
		return c.alu(inst, next, uint64(hi))
	case riscv.MULHU:
		hi, _ := mulu64(u1, u2)
		return c.alu(inst, next, hi)
	case riscv.MULHSU:
		hi := mulhsu(s1, u2)
		return c.alu(inst, next, uint64(hi))
	case riscv.DIV:
		if s2 == 0 {
			return c.alu(inst, next, ^uint64(0))
		}
		if s1 == math.MinInt64 && s2 == -1 {
			return c.alu(inst, next, uint64(s1))
		}
		return c.alu(inst, next, uint64(s1/s2))
	case riscv.DIVU:
		if u2 == 0 {
			return c.alu(inst, next, ^uint64(0))
		}
		return c.alu(inst, next, u1/u2)
	case riscv.REM:
		if s2 == 0 {
			return c.alu(inst, next, uint64(s1))
		}
		if s1 == math.MinInt64 && s2 == -1 {
			return c.alu(inst, next, 0)
		}
		return c.alu(inst, next, uint64(s1%s2))
	case riscv.REMU:
		if u2 == 0 {
			return c.alu(inst, next, u1)
		}
		return c.alu(inst, next, u1%u2)
	case riscv.MULW:
		return c.aluW(inst, next, int64(int32(u1)*int32(u2)))
	case riscv.DIVW:
		a, b := int32(u1), int32(u2)
		if b == 0 {
			return c.alu(inst, next, ^uint64(0))
		}
		if a == math.MinInt32 && b == -1 {
			return c.aluW(inst, next, int64(a))
		}
		return c.aluW(inst, next, int64(a/b))
	case riscv.DIVUW:
		a, b := uint32(u1), uint32(u2)
		if b == 0 {
			return c.alu(inst, next, ^uint64(0))
		}
		return c.aluW(inst, next, int64(int32(a/b)))
	case riscv.REMW:
		a, b := int32(u1), int32(u2)
		if b == 0 {
			return c.aluW(inst, next, int64(a))
		}
		if a == math.MinInt32 && b == -1 {
			return c.aluW(inst, next, 0)
		}
		return c.aluW(inst, next, int64(a%b))
	case riscv.REMUW:
		a, b := uint32(u1), uint32(u2)
		if b == 0 {
			return c.aluW(inst, next, int64(int32(a)))
		}
		return c.aluW(inst, next, int64(int32(a%b)))

	case riscv.SH1ADD:
		return c.alu(inst, next, u1<<1+u2)
	case riscv.SH2ADD:
		return c.alu(inst, next, u1<<2+u2)
	case riscv.SH3ADD:
		return c.alu(inst, next, u1<<3+u2)
	case riscv.ANDN:
		return c.alu(inst, next, u1&^u2)
	case riscv.ORN:
		return c.alu(inst, next, u1|^u2)
	case riscv.XNOR:
		return c.alu(inst, next, ^(u1 ^ u2))

	default:
		return c.execFPV(inst, next)
	}
}

func mul64(a, b int64) (hi, lo int64) {
	h, l := mulu64(uint64(a), uint64(b))
	if a < 0 {
		h -= uint64(b)
	}
	if b < 0 {
		h -= uint64(a)
	}
	return int64(h), int64(l)
}

func mulu64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := al*bh + (al*bl)>>32
	tl, th := t&mask, t>>32
	tl += ah * bl
	return ah*bh + th + tl>>32, a * b
}

func mulhsu(a int64, b uint64) int64 {
	h, _ := mulu64(uint64(a), b)
	if a < 0 {
		h -= b
	}
	return int64(h)
}
