package emu

import (
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/telemetry"
)

// SymTableOf converts an image's function symbols into the telemetry
// profiler's symbolizer shape (telemetry stays dependency-free, so the
// conversion lives on the emulator side, which already speaks obj).
func SymTableOf(imgs ...*obj.Image) *telemetry.SymTable {
	var syms []telemetry.Sym
	for _, img := range imgs {
		if img == nil {
			continue
		}
		for _, s := range img.FuncSymbols() {
			syms = append(syms, telemetry.Sym{Name: s.Name, Addr: s.Addr, Size: s.Size})
		}
	}
	if len(syms) == 0 {
		return nil
	}
	return telemetry.NewSymTable(syms)
}
