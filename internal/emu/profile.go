package emu

import (
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
	"github.com/eurosys26p57/chimera/internal/telemetry"
)

// DefaultTraceThreshold is the block dispatch count at which a chain is
// promoted into a superblock trace (CPU.TraceThreshold; 0 disables the
// tier). Low enough that steady loops promote within the first few
// milliseconds of guest time, high enough that one-shot startup code never
// pays a stitch.
const DefaultTraceThreshold = 64

// stitchSuccessor is the trace builder's profile-guided successor policy:
// given the block b just stitched and last (the trace's copy of b's
// terminal µop), pick the continuation block and burn the matching guard
// expectation into last. It returns nil — leaving last at expNone, the
// plain block-tier exit — when the seam cannot be predicted: unchained or
// stale successors, an indirect jump with no PIC history (or with an
// indirect hook installed, which may redirect or patch at every call), or a
// terminal ECALL/EBREAK. Pure observers (coverage, cmp, mem) never veto a
// seam: they cannot change guest behavior, so traces promote under them
// exactly as when uninstrumented.
func (c *CPU) stitchSuccessor(b *block, last *uop) *block {
	switch last.op {
	case riscv.JAL:
		if s := b.succTake; s != nil && c.blockValid(s, last.target) {
			last.expect = expFold
			return s
		}
	case riscv.JALR:
		if h := c.Hooks; h != nil && h.Indirect != nil {
			return nil
		}
		// Predict the MRU polymorphic-inline-cache entry.
		if s := b.picB[0]; s != nil && b.picPC[0] != 0 && c.blockValid(s, b.picPC[0]) {
			last.expect = expJalr
			last.target = b.picPC[0]
			return s
		}
	case riscv.BEQ, riscv.BNE, riscv.BLT, riscv.BGE, riscv.BLTU, riscv.BGEU:
		fall, take := b.succFall, b.succTake
		fallOK := fall != nil && c.blockValid(fall, last.next)
		takeOK := take != nil && c.blockValid(take, last.target)
		// Follow the hotter side; ties go to the fallthrough (the static
		// not-taken hint).
		if takeOK && (!fallOK || take.heat > fall.heat) {
			last.expect = expTaken
			return take
		}
		if fallOK {
			last.expect = expNotTaken
			return fall
		}
	default:
		// Non-control block end (ISA boundary, size cap, page edge): the
		// fallthrough is unconditional, so the seam needs no guard.
		if s := b.succFall; s != nil && c.blockValid(s, last.next) {
			return s
		}
	}
	return nil
}

// SymTableOf converts an image's function symbols into the telemetry
// profiler's symbolizer shape (telemetry stays dependency-free, so the
// conversion lives on the emulator side, which already speaks obj).
func SymTableOf(imgs ...*obj.Image) *telemetry.SymTable {
	var syms []telemetry.Sym
	for _, img := range imgs {
		if img == nil {
			continue
		}
		for _, s := range img.FuncSymbols() {
			syms = append(syms, telemetry.Sym{Name: s.Name, Addr: s.Addr, Size: s.Size})
		}
	}
	if len(syms) == 0 {
		return nil
	}
	return telemetry.NewSymTable(syms)
}
