package emu

import (
	"encoding/binary"
	"testing"

	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

func enc(t *testing.T, insts ...riscv.Inst) []byte {
	t.Helper()
	out := make([]byte, 0, 4*len(insts))
	var w [4]byte
	for _, in := range insts {
		binary.LittleEndian.PutUint32(w[:], riscv.MustEncode(in))
		out = append(out, w[:]...)
	}
	return out
}

func codeCPU(t *testing.T, text []byte) *CPU {
	t.Helper()
	mem := NewMemory()
	mem.Map(obj.TextBase, uint64(len(text)), obj.PermRX)
	mem.write(obj.TextBase, text)
	cpu := NewCPU(mem, riscv.RV64GC)
	cpu.PC = obj.TextBase
	return cpu
}

// TestPokePartialWriteAtomic is the regression test for the multi-page Poke
// bug: a poke whose second page is unmapped used to write the first page's
// bytes and return false without bumping gen, leaving decoded caches
// serving stale instructions over silently-patched bytes. Poke must now be
// all-or-nothing.
func TestPokePartialWriteAtomic(t *testing.T) {
	mem := NewMemory()
	mem.Map(0x1000, obj.PageSize, obj.PermRW) // second page unmapped
	genBefore := mem.Gen()

	data := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	if mem.Poke(0x1000+obj.PageSize-2, data) {
		t.Fatal("poke spanning into unmapped page succeeded")
	}
	if mem.Gen() != genBefore {
		t.Errorf("failed poke bumped gen: %d -> %d", genBefore, mem.Gen())
	}
	var got [2]byte
	if _, ok := mem.Read(0x1000+obj.PageSize-2, got[:]); !ok {
		t.Fatal("read back failed")
	}
	if got != [2]byte{} {
		t.Errorf("failed poke wrote first-page bytes: %x", got)
	}
}

// TestPokeInsideCachedBlock patches an instruction in the *middle* of a hot
// cached block; the next dispatch must decode the new bytes.
func TestPokeInsideCachedBlock(t *testing.T) {
	// loop: addi a0,a0,1 ; addi a0,a0,1 ; addi a0,a0,1 ; j loop
	cpu := codeCPU(t, enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -12},
	))
	if stop := cpu.Run(400); stop.Kind != StopLimit {
		t.Fatalf("warmup stop: %+v", stop)
	}
	if cpu.Blocks.Built == 0 || cpu.Blocks.Hits == 0 {
		t.Fatalf("block cache not exercised: %+v", cpu.Blocks)
	}

	// Patch the middle addi to add 50.
	patch := enc(t, riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 50})
	if !cpu.Mem.Poke(obj.TextBase+4, patch) {
		t.Fatal("poke failed")
	}
	cpu.PC = obj.TextBase
	before := cpu.X[riscv.A0]
	if stop := cpu.Run(4); stop.Kind != StopLimit {
		t.Fatalf("stop after poke: %+v", stop)
	}
	if got := cpu.X[riscv.A0] - before; got != 52 {
		t.Errorf("patched iteration added %d, want 52 (stale block?)", got)
	}
	if cpu.Blocks.Invalidations == 0 {
		t.Errorf("no invalidation counted after poke: %+v", cpu.Blocks)
	}
}

// TestMapPageInvalidatesBlock remaps the text page to a different frame (the
// MMView swap primitive) and checks the hart executes the new frame's code.
func TestMapPageInvalidatesBlock(t *testing.T) {
	cpu := codeCPU(t, enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -4},
	))
	if stop := cpu.Run(100); stop.Kind != StopLimit {
		t.Fatalf("warmup stop: %+v", stop)
	}

	// A fresh frame with the same loop shape but a different increment.
	frame := &Page{Perm: obj.PermRX}
	copy(frame.Data[:], enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 7},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -4},
	))
	cpu.Mem.MapPage(obj.TextBase, frame)

	cpu.PC = obj.TextBase
	before := cpu.X[riscv.A0]
	if stop := cpu.Run(2); stop.Kind != StopLimit {
		t.Fatalf("stop after remap: %+v", stop)
	}
	if got := cpu.X[riscv.A0] - before; got != 7 {
		t.Errorf("remapped iteration added %d, want 7 (stale block?)", got)
	}
}

// TestSharedMemoryTwoCPUs runs two harts over one address space: a poke
// made while hart A has the block hot must also be observed by hart B (and
// by A), each through its own block cache. The harts are interleaved, not
// concurrent — Memory is a single simulated socket, not goroutine-safe.
func TestSharedMemoryTwoCPUs(t *testing.T) {
	mem := NewMemory()
	text := enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 2},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -8},
	)
	mem.Map(obj.TextBase, uint64(len(text)), obj.PermRX)
	mem.write(obj.TextBase, text)

	a := NewCPU(mem, riscv.RV64GC)
	b := NewCPU(mem, riscv.RV64GC)
	a.PC, b.PC = obj.TextBase, obj.TextBase

	// Warm both block caches, interleaved.
	for i := 0; i < 10; i++ {
		if stop := a.Run(30); stop.Kind != StopLimit {
			t.Fatalf("hart A stop: %+v", stop)
		}
		if stop := b.Run(30); stop.Kind != StopLimit {
			t.Fatalf("hart B stop: %+v", stop)
		}
	}

	patch := enc(t, riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 100})
	if !mem.Poke(obj.TextBase+4, patch) {
		t.Fatal("poke failed")
	}

	for name, c := range map[string]*CPU{"A": a, "B": b} {
		c.PC = obj.TextBase
		before := c.X[riscv.A0]
		if stop := c.Run(3); stop.Kind != StopLimit {
			t.Fatalf("hart %s stop after poke: %+v", name, stop)
		}
		if got := c.X[riscv.A0] - before; got != 101 {
			t.Errorf("hart %s: patched iteration added %d, want 101", name, got)
		}
	}
}

// TestMidBlockFaultPrecision faults on the third instruction of a
// straight-line block and requires the exact architectural state stepping
// produces: fault PC/addr/kind/message, Instret, Cycles, registers.
func TestMidBlockFaultPrecision(t *testing.T) {
	text := enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A1, Rs1: riscv.A1, Imm: 2},
		riscv.Inst{Op: riscv.SD, Rs1: riscv.A3, Rs2: riscv.A0, Imm: 0}, // a3 unmapped
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A2, Rs1: riscv.A2, Imm: 4},
		riscv.Inst{Op: riscv.EBREAK},
	)
	run := func(interp bool) *CPU {
		cpu := codeCPU(t, text)
		cpu.Interp = interp
		cpu.X[riscv.A3] = 0xdead0000
		stop := cpu.Run(100)
		if stop.Kind != StopFault {
			t.Fatalf("interp=%v: stop %+v, want fault", interp, stop)
		}
		f := stop.Fault
		if f.Kind != FaultAccess || f.PC != obj.TextBase+8 || f.Addr != 0xdead0000 {
			t.Errorf("interp=%v: fault %v", interp, f)
		}
		return cpu
	}
	ref := run(true)
	got := run(false)
	if got.PC != ref.PC || got.Instret != ref.Instret || got.Cycles != ref.Cycles {
		t.Errorf("block fault state PC=%#x Instret=%d Cycles=%d, stepping PC=%#x Instret=%d Cycles=%d",
			got.PC, got.Instret, got.Cycles, ref.PC, ref.Instret, ref.Cycles)
	}
	if got.X != ref.X {
		t.Errorf("register files diverge after fault")
	}
}

// TestBlockFaultOnFirstInstruction: when even the first instruction of a
// would-be block can't run (fetch fault), the engine must fall back to
// stepping and raise the identical precise fault.
func TestBlockFaultOnFirstInstruction(t *testing.T) {
	for _, interp := range []bool{true, false} {
		mem := NewMemory()
		mem.Map(obj.TextBase, obj.PageSize, obj.PermR) // not executable
		cpu := NewCPU(mem, riscv.RV64GC)
		cpu.Interp = interp
		cpu.PC = obj.TextBase
		stop := cpu.Run(10)
		if stop.Kind != StopFault || stop.Fault.Kind != FaultAccess || stop.Fault.PC != obj.TextBase {
			t.Errorf("interp=%v: stop %+v, want fetch fault at %#x", interp, stop, obj.TextBase)
		}
	}
}

// TestBlockStatsCounters sanity-checks the counters the service exports.
// The trace tier is pinned off: with it on, a hot loop dispatches as an
// unrolled trace and RetiredPerDispatch is legitimately much higher
// (trace_test.go covers that shape).
func TestBlockStatsCounters(t *testing.T) {
	cpu := codeCPU(t, enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -8},
	))
	cpu.TraceThreshold = 0
	if stop := cpu.Run(300); stop.Kind != StopLimit {
		t.Fatalf("stop: %+v", stop)
	}
	s := cpu.Blocks
	if s.Built == 0 || s.Hits == 0 || s.Dispatches == 0 {
		t.Fatalf("counters not moving: %+v", s)
	}
	if s.Retired != cpu.Instret {
		t.Errorf("Retired=%d, Instret=%d", s.Retired, cpu.Instret)
	}
	if r := s.RetiredPerDispatch(); r < 2.5 || r > 3.5 {
		t.Errorf("RetiredPerDispatch=%.2f, want ~3 for a 3-inst loop", r)
	}
	if hr := s.HitRatio(); hr < 0.9 {
		t.Errorf("HitRatio=%.3f, want ~1 for a hot loop", hr)
	}
}
