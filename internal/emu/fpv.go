package emu

import (
	"encoding/binary"
	"fmt"

	"github.com/eurosys26p57/chimera/internal/riscv"
)

// The FP retire helpers mirror the integer ones in cpu.go: methods rather
// than per-call closures so the hot path never allocates.

// fd writes a double result and retires.
func (c *CPU) fd(inst riscv.Inst, next uint64, v float64) (Stop, bool) {
	c.F[inst.Rd] = f64b(v)
	return c.retire(inst, next, false)
}

// fs writes a NaN-boxed single result and retires.
func (c *CPU) fs(inst riscv.Inst, next uint64, v float32) (Stop, bool) {
	c.F[inst.Rd] = f32b(v)
	return c.retire(inst, next, false)
}

// xv writes an integer-register result and retires.
func (c *CPU) xv(inst riscv.Inst, next uint64, v uint64) (Stop, bool) {
	c.X[inst.Rd] = v
	return c.retire(inst, next, false)
}

// execFPV implements the floating-point and vector subset.
func (c *CPU) execFPV(inst riscv.Inst, next uint64) (Stop, bool) {
	rd, rs1, rs2, rs3 := inst.Rd, inst.Rs1, inst.Rs2, inst.Rs3
	imm := inst.Imm

	d1, d2, d3 := f64(c.F[rs1]), f64(c.F[rs2]), f64(c.F[rs3])
	s1f, s2f, s3f := f32of(c.F[rs1]), f32of(c.F[rs2]), f32of(c.F[rs3])

	switch inst.Op {
	case riscv.FLW:
		var b [4]byte
		addr := c.X[rs1] + uint64(imm)
		if fa, ok := c.Mem.Read(addr, b[:]); !ok {
			return c.fault(FaultAccess, fa, fmt.Errorf("flw"))
		}
		c.F[rd] = 0xFFFFFFFF_00000000 | uint64(binary.LittleEndian.Uint32(b[:]))
		return c.retire(inst, next, false)
	case riscv.FLD:
		var b [8]byte
		addr := c.X[rs1] + uint64(imm)
		if fa, ok := c.Mem.Read(addr, b[:]); !ok {
			return c.fault(FaultAccess, fa, fmt.Errorf("fld"))
		}
		c.F[rd] = binary.LittleEndian.Uint64(b[:])
		return c.retire(inst, next, false)
	case riscv.FSW:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(c.F[rs2]))
		addr := c.X[rs1] + uint64(imm)
		if fa, ok := c.Mem.Write(addr, b[:]); !ok {
			return c.fault(FaultAccess, fa, fmt.Errorf("fsw"))
		}
		return c.retire(inst, next, false)
	case riscv.FSD:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], c.F[rs2])
		addr := c.X[rs1] + uint64(imm)
		if fa, ok := c.Mem.Write(addr, b[:]); !ok {
			return c.fault(FaultAccess, fa, fmt.Errorf("fsd"))
		}
		return c.retire(inst, next, false)

	case riscv.FADDS:
		return c.fs(inst, next, s1f+s2f)
	case riscv.FSUBS:
		return c.fs(inst, next, s1f-s2f)
	case riscv.FMULS:
		return c.fs(inst, next, s1f*s2f)
	case riscv.FDIVS:
		return c.fs(inst, next, s1f/s2f)
	case riscv.FMADDS:
		return c.fs(inst, next, s1f*s2f+s3f)
	case riscv.FADDD:
		return c.fd(inst, next, d1+d2)
	case riscv.FSUBD:
		return c.fd(inst, next, d1-d2)
	case riscv.FMULD:
		return c.fd(inst, next, d1*d2)
	case riscv.FDIVD:
		return c.fd(inst, next, d1/d2)
	case riscv.FMADDD:
		return c.fd(inst, next, d1*d2+d3)
	case riscv.FSGNJS:
		v := uint32(c.F[rs1])&0x7FFFFFFF | uint32(c.F[rs2])&0x80000000
		c.F[rd] = 0xFFFFFFFF_00000000 | uint64(v)
		return c.retire(inst, next, false)
	case riscv.FSGNJD:
		c.F[rd] = c.F[rs1]&0x7FFFFFFF_FFFFFFFF | c.F[rs2]&0x80000000_00000000
		return c.retire(inst, next, false)
	case riscv.FCVTSL:
		return c.fs(inst, next, float32(int64(c.X[rs1])))
	case riscv.FCVTDL:
		return c.fd(inst, next, float64(int64(c.X[rs1])))
	case riscv.FCVTLD:
		return c.xv(inst, next, uint64(int64(d1)))
	case riscv.FMVXD:
		return c.xv(inst, next, c.F[rs1])
	case riscv.FMVDX:
		c.F[rd] = c.X[rs1]
		return c.retire(inst, next, false)
	case riscv.FMVXW:
		return c.xv(inst, next, uint64(int64(int32(uint32(c.F[rs1])))))
	case riscv.FMVWX:
		c.F[rd] = 0xFFFFFFFF_00000000 | uint64(uint32(c.X[rs1]))
		return c.retire(inst, next, false)
	case riscv.FEQD:
		if d1 == d2 {
			return c.xv(inst, next, 1)
		}
		return c.xv(inst, next, 0)
	case riscv.FLTD:
		if d1 < d2 {
			return c.xv(inst, next, 1)
		}
		return c.xv(inst, next, 0)
	case riscv.FLED:
		if d1 <= d2 {
			return c.xv(inst, next, 1)
		}
		return c.xv(inst, next, 0)
	}
	return c.execVector(inst, next)
}

// vlmax returns the number of elements a vector register holds at the
// current element width.
func (c *CPU) vlmax() uint64 {
	return uint64(riscv.VLenBytes / riscv.SEWOf(c.VT).Bytes())
}

func (c *CPU) sewBytes() int { return riscv.SEWOf(c.VT).Bytes() }

func (c *CPU) execVector(inst riscv.Inst, next uint64) (Stop, bool) {
	rd, rs1, rs2 := inst.Rd, inst.Rs1, inst.Rs2

	switch inst.Op {
	case riscv.VSETVLI:
		c.VT = inst.Imm
		avl := c.X[rs1]
		if rs1 == riscv.Zero {
			avl = c.vlmax() // rd!=0, rs1==0: set vl to VLMAX
		}
		if max := c.vlmax(); avl > max {
			avl = max
		}
		c.VL = avl
		c.X[rd] = avl
		return c.retire(inst, next, false)

	case riscv.VLE32V, riscv.VLE64V:
		size := 4
		if inst.Op == riscv.VLE64V {
			size = 8
		}
		// n never exceeds VLenBytes (VL is capped at VLMAX), so a fixed
		// buffer keeps the vector hot loop allocation-free.
		var buf [riscv.VLenBytes]byte
		n := int(c.VL) * size
		if fa, ok := c.Mem.Read(c.X[rs1], buf[:n]); !ok {
			return c.fault(FaultAccess, fa, fmt.Errorf("vector load"))
		}
		copy(c.V[rd][:], buf[:n])
		return c.retire(inst, next, false)

	case riscv.VSE32V, riscv.VSE64V:
		size := 4
		if inst.Op == riscv.VSE64V {
			size = 8
		}
		n := int(c.VL) * size
		if fa, ok := c.Mem.Write(c.X[rs1], c.V[rd][:n]); !ok {
			return c.fault(FaultAccess, fa, fmt.Errorf("vector store"))
		}
		return c.retire(inst, next, false)
	}

	sew := c.sewBytes()
	ld := func(v *Vec, i int) uint64 {
		switch sew {
		case 4:
			return uint64(binary.LittleEndian.Uint32(v[i*4:]))
		default:
			return binary.LittleEndian.Uint64(v[i*8:])
		}
	}
	st := func(v *Vec, i int, val uint64) {
		switch sew {
		case 4:
			binary.LittleEndian.PutUint32(v[i*4:], uint32(val))
		default:
			binary.LittleEndian.PutUint64(v[i*8:], val)
		}
	}
	ldf := func(v *Vec, i int) float64 {
		if sew == 4 {
			return float64(f32of(0xFFFFFFFF_00000000 | ld(v, i)))
		}
		return f64(ld(v, i))
	}
	stf := func(v *Vec, i int, val float64) {
		if sew == 4 {
			st(v, i, uint64(f32b(float32(val)))&0xFFFFFFFF)
			return
		}
		st(v, i, f64b(val))
	}
	vl := int(c.VL)

	switch inst.Op {
	case riscv.VADDVV:
		for i := 0; i < vl; i++ {
			st(&c.V[rd], i, ld(&c.V[rs2], i)+ld(&c.V[rs1], i))
		}
	case riscv.VADDVX:
		for i := 0; i < vl; i++ {
			st(&c.V[rd], i, ld(&c.V[rs2], i)+c.X[rs1])
		}
	case riscv.VMULVV:
		for i := 0; i < vl; i++ {
			st(&c.V[rd], i, ld(&c.V[rs2], i)*ld(&c.V[rs1], i))
		}
	case riscv.VMVVI:
		for i := 0; i < vl; i++ {
			st(&c.V[rd], i, uint64(inst.Imm))
		}
	case riscv.VMVVX:
		for i := 0; i < vl; i++ {
			st(&c.V[rd], i, c.X[rs1])
		}
	case riscv.VFADDVV:
		for i := 0; i < vl; i++ {
			stf(&c.V[rd], i, ldf(&c.V[rs2], i)+ldf(&c.V[rs1], i))
		}
	case riscv.VFMULVV:
		for i := 0; i < vl; i++ {
			stf(&c.V[rd], i, ldf(&c.V[rs2], i)*ldf(&c.V[rs1], i))
		}
	case riscv.VFMACCVV:
		// vd[i] += vs1[i] * vs2[i]
		for i := 0; i < vl; i++ {
			stf(&c.V[rd], i, ldf(&c.V[rd], i)+ldf(&c.V[rs1], i)*ldf(&c.V[rs2], i))
		}
	case riscv.VFMACCVF:
		// vd[i] += f[rs1] * vs2[i]
		var scalar float64
		if sew == 4 {
			scalar = float64(f32of(c.F[rs1]))
		} else {
			scalar = f64(c.F[rs1])
		}
		for i := 0; i < vl; i++ {
			stf(&c.V[rd], i, ldf(&c.V[rd], i)+scalar*ldf(&c.V[rs2], i))
		}
	case riscv.VFMVVF:
		var bits uint64
		if sew == 4 {
			bits = c.F[rs1] & 0xFFFFFFFF
		} else {
			bits = c.F[rs1]
		}
		for i := 0; i < vl; i++ {
			st(&c.V[rd], i, bits)
		}
	case riscv.VFMVFS:
		if sew == 4 {
			c.F[rd] = 0xFFFFFFFF_00000000 | ld(&c.V[rs2], 0)
		} else {
			c.F[rd] = ld(&c.V[rs2], 0)
		}
	case riscv.VFREDUSUMVS:
		// vd[0] = vs1[0] + sum(vs2[0..vl))
		acc := ldf(&c.V[rs1], 0)
		for i := 0; i < vl; i++ {
			acc += ldf(&c.V[rs2], i)
		}
		stf(&c.V[rd], 0, acc)
	default:
		return c.fault(FaultIllegal, c.PC, fmt.Errorf("unimplemented %s", inst))
	}
	return c.retire(inst, next, false)
}
