package emu_test

import (
	"errors"
	"strings"
	"testing"

	"github.com/eurosys26p57/chimera/internal/asm"
	"github.com/eurosys26p57/chimera/internal/emu"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

// TestFaultCarriesEncoding checks that an illegal encoding reaching the
// fetch path faults with a typed IllegalInstError exposing the raw bits —
// the contract fuzz divergence reports rely on.
func TestFaultCarriesEncoding(t *testing.T) {
	const badWord = 0x0000002F // AMO opcode, not in the supported subset
	b := asm.NewBuilder(riscv.RV64GC)
	b.Func("main")
	b.Nop()
	b.Raw(badWord)
	img, err := b.Build("fault-test", "main")
	if err != nil {
		t.Fatal(err)
	}
	for _, interp := range []bool{true, false} {
		mem := emu.NewMemory()
		mem.MapImage(img)
		cpu := emu.NewCPU(mem, riscv.RV64GC)
		cpu.Interp = interp
		cpu.Reset(img)
		stop := cpu.Run(100)
		if stop.Kind != emu.StopFault || stop.Fault.Kind != emu.FaultIllegal {
			t.Fatalf("interp=%v: stop %+v, want illegal-instruction fault", interp, stop)
		}
		ie, ok := stop.Fault.IllegalInst()
		if !ok {
			t.Fatalf("interp=%v: fault err %v (%T) is not an IllegalInstError",
				interp, stop.Fault.Err, stop.Fault.Err)
		}
		if ie.Raw != badWord || ie.Width != 4 {
			t.Errorf("interp=%v: Raw=%#x Width=%d, want Raw=%#x Width=4", interp, ie.Raw, ie.Width, badWord)
		}
		if !errors.Is(stop.Fault.Err, riscv.ErrIllegal) {
			t.Errorf("interp=%v: fault err %v does not wrap ErrIllegal", interp, stop.Fault.Err)
		}
		if !strings.Contains(stop.Fault.String(), "0x0000002f") {
			t.Errorf("interp=%v: fault string %q does not show the encoding", interp, stop.Fault)
		}
	}
}

// TestFaultCompressedWithoutC checks the no-C fault also carries the parcel.
func TestFaultCompressedWithoutC(t *testing.T) {
	b := asm.NewBuilder(riscv.RV64GC)
	b.Compress = true
	b.Func("main")
	b.Imm(riscv.ADDI, riscv.A0, riscv.A0, 1) // compressible: c.addi
	b.Ecall()
	img, err := b.Build("noc-test", "main")
	if err != nil {
		t.Fatal(err)
	}
	mem := emu.NewMemory()
	mem.MapImage(img)
	cpu := emu.NewCPU(mem, riscv.RV64G) // no C extension
	cpu.Reset(img)
	stop := cpu.Run(100)
	if stop.Kind != emu.StopFault || stop.Fault.Kind != emu.FaultIllegal {
		t.Fatalf("stop %+v, want illegal-instruction fault", stop)
	}
	ie, ok := stop.Fault.IllegalInst()
	if !ok || ie.Width != 2 {
		t.Fatalf("fault err %v: want a 2-byte IllegalInstError", stop.Fault.Err)
	}
}
