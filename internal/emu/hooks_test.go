package emu

import (
	"testing"

	"github.com/eurosys26p57/chimera/internal/instrument"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

// observerCPU is codeCPU with a full observer set installed.
func observerCPU(t *testing.T, text []byte) (*CPU, *instrument.Hooks) {
	t.Helper()
	cpu := codeCPU(t, text)
	h := &instrument.Hooks{
		Cov: instrument.NewCoverage(),
		Cmp: instrument.NewCmpLog(),
		Mem: instrument.NewMemTrace(),
	}
	cpu.SetHooks(h)
	return cpu, h
}

// jalrLoopText is the alternating-target indirect-jump loop from
// TestTracePICIndirect: the shape whose trace promotion an indirect hook
// vetoes and a pure observer must not.
func jalrLoopText(t *testing.T) []byte {
	t.Helper()
	text := make([]byte, 0x48)
	copy(text[0x00:], enc(t,
		riscv.Inst{Op: riscv.ANDI, Rd: riscv.T1, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.SLLI, Rd: riscv.T1, Rs1: riscv.T1, Imm: 5},
		riscv.Inst{Op: riscv.ADD, Rd: riscv.T1, Rs1: riscv.T1, Rs2: riscv.A4},
		riscv.Inst{Op: riscv.JALR, Rd: riscv.Zero, Rs1: riscv.T1, Imm: 0},
	))
	copy(text[0x20:], enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -0x24},
	))
	copy(text[0x40:], enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero, Imm: -0x44},
	))
	return text
}

// TestObserversDoNotVetoTracePromotion is the trace+hook interaction test:
// pure observers (coverage, cmp) must leave jalr trace stitching intact —
// traces promote, the burned indirect guard still side-exits precisely, and
// the architectural trajectory matches an identically-observed interpreter.
func TestObserversDoNotVetoTracePromotion(t *testing.T) {
	text := jalrLoopText(t)
	mk := func(interp bool) (*CPU, *instrument.Hooks) {
		cpu, h := observerCPU(t, text)
		cpu.Interp = interp
		cpu.X[riscv.A4] = obj.TextBase + 0x20
		return cpu, h
	}
	trc, htrc := mk(false)
	ref, href := mk(true)
	const slice = 89
	for i := 0; i < 20; i++ {
		st := trc.Run(slice)
		sr := ref.Run(slice)
		if st != sr {
			t.Fatalf("slice %d: stop %+v != ref %+v", i, st, sr)
		}
		sameState(t, "slice", trc, ref)
	}
	s := trc.Blocks
	if s.TracesBuilt == 0 {
		t.Fatalf("pure observers suppressed trace promotion: %+v", s)
	}
	if s.SideExits == 0 {
		t.Fatalf("burned indirect guard never exercised under observers: %+v", s)
	}
	// The trace tier actually stitched across the jalr: verify some trace
	// carries an expJalr guard, the seam an indirect hook would have vetoed.
	guarded := false
	for _, b := range trc.bcache {
		if b == nil || b.trace == nil {
			continue
		}
		for i := range b.trace.uops {
			if b.trace.uops[i].expect == expJalr {
				guarded = true
			}
		}
	}
	if !guarded {
		t.Error("no stitched trace carries an expJalr seam; jalr stitching was downgraded")
	}
	// Both engines logged the same comparisons (none here — the loop has no
	// conditional branch) and observers saw activity.
	if htrc.Cov.Edges() == 0 {
		t.Error("coverage map empty under the trace tier")
	}
	if href.Cov.Edges() != 0 {
		// The interpreter has no dispatch stream, so block-level coverage
		// stays empty there by design.
		t.Error("interpreter unexpectedly recorded block coverage")
	}
}

// TestIndirectHookStillVetoesJalrStitching pins the pre-existing contract:
// a target-rewriting hook keeps vetoing jalr seams even now that it shares
// the registration surface with observers.
func TestIndirectHookStillVetoesJalrStitching(t *testing.T) {
	cpu := codeCPU(t, jalrLoopText(t))
	h := &instrument.Hooks{Indirect: func(pc, target uint64) (uint64, uint64) { return target, 0 }}
	cpu.SetHooks(h)
	cpu.X[riscv.A4] = obj.TextBase + 0x20
	if stop := cpu.Run(5000); stop.Kind != StopLimit {
		t.Fatalf("stop: %+v", stop)
	}
	for _, b := range cpu.bcache {
		if b == nil || b.trace == nil {
			continue
		}
		for i := range b.trace.uops {
			if b.trace.uops[i].expect == expJalr {
				t.Fatal("expJalr seam stitched with an indirect hook installed")
			}
		}
	}
	if h.IndirectCalls == 0 {
		t.Error("indirect hook never fired")
	}
}

// TestCoverageParityBlocksVsTraces requires the two translation tiers to
// produce bit-identical coverage maps: every stitched block a trace enters
// is recorded exactly as a block-tier dispatch sequence would record it,
// including side exits and the halting dispatch.
func TestCoverageParityBlocksVsTraces(t *testing.T) {
	programs := map[string][]byte{
		"branch-flip": enc(t,
			riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
			riscv.Inst{Op: riscv.BNE, Rs1: riscv.A0, Rs2: riscv.A2, Imm: -4},
			riscv.Inst{Op: riscv.EBREAK},
		),
		"jalr-alternate": append(jalrLoopText(t), enc(t, riscv.Inst{Op: riscv.EBREAK})...),
	}
	for name, text := range programs {
		run := func(threshold uint32) *instrument.Coverage {
			cpu, h := observerCPU(t, text)
			cpu.TraceThreshold = threshold
			cpu.X[riscv.A2] = 500
			cpu.X[riscv.A4] = obj.TextBase + 0x20
			cpu.MaxInstret = 4000
			for {
				stop := cpu.Run(97) // prime slice: budget seams wander
				if stop.Kind == StopBreak || stop.Kind == StopBudget {
					break
				}
				if stop.Kind != StopLimit {
					t.Fatalf("%s: stop %+v", name, stop)
				}
			}
			if threshold != 0 && cpu.Blocks.TracesBuilt == 0 {
				t.Fatalf("%s: trace tier not exercised", name)
			}
			return h.Cov
		}
		blocks := run(0)
		traces := run(2)
		if blocks.Map != traces.Map {
			diff := 0
			for i := range blocks.Map {
				if blocks.Map[i] != traces.Map[i] {
					diff++
				}
			}
			t.Errorf("%s: coverage maps diverge between tiers (%d cells differ)", name, diff)
		}
		if blocks.Edges() == 0 {
			t.Errorf("%s: empty coverage map", name)
		}
	}
}

// TestCmpLogParityAcrossTiers requires identical comparison logs from the
// interpreter, the block tier, and the trace tier: same entries, same order,
// same operand values.
func TestCmpLogParityAcrossTiers(t *testing.T) {
	text := enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.BNE, Rs1: riscv.A0, Rs2: riscv.A2, Imm: -4},
		riscv.Inst{Op: riscv.EBREAK},
	)
	run := func(interp bool, threshold uint32) *instrument.CmpLog {
		cpu, h := observerCPU(t, text)
		cpu.Interp = interp
		cpu.TraceThreshold = threshold
		cpu.X[riscv.A2] = 300
		for {
			stop := cpu.Run(101)
			if stop.Kind == StopBreak {
				break
			}
			if stop.Kind != StopLimit {
				t.Fatalf("stop %+v", stop)
			}
		}
		return h.Cmp
	}
	interp := run(true, 0)
	blocks := run(false, 0)
	traces := run(false, 2)
	if interp.N != 300 {
		t.Fatalf("interpreter logged %d comparisons, want 300", interp.N)
	}
	for tier, log := range map[string]*instrument.CmpLog{"blocks": blocks, "traces": traces} {
		if log.N != interp.N {
			t.Errorf("%s: logged %d comparisons, interpreter %d", tier, log.N, interp.N)
			continue
		}
		for i := 0; i < interp.Len(); i++ {
			if log.Entry(i) != interp.Entry(i) {
				t.Errorf("%s: entry %d = %+v, interpreter %+v", tier, i, log.Entry(i), interp.Entry(i))
				break
			}
		}
	}
}

// TestMemTraceParityAcrossTiers requires identical access logs from all
// three engines, with a faulting access appearing as the final entry.
func TestMemTraceParityAcrossTiers(t *testing.T) {
	// Store then load a scratch cell each iteration; final load faults.
	text := enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.SD, Rs1: riscv.A3, Rs2: riscv.A0, Imm: 0},
		riscv.Inst{Op: riscv.LW, Rd: riscv.A1, Rs1: riscv.A3, Imm: 0},
		riscv.Inst{Op: riscv.BNE, Rs1: riscv.A0, Rs2: riscv.A2, Imm: -12},
		riscv.Inst{Op: riscv.LD, Rd: riscv.A1, Rs1: riscv.Zero, Imm: 0}, // faults
	)
	run := func(interp bool, threshold uint32) *instrument.MemTrace {
		cpu, h := observerCPU(t, text)
		cpu.Interp = interp
		cpu.TraceThreshold = threshold
		cpu.Mem.Map(0x200000, obj.PageSize, obj.PermRW)
		cpu.X[riscv.A3] = 0x200000
		cpu.X[riscv.A2] = 200
		for {
			stop := cpu.Run(103)
			if stop.Kind == StopFault {
				if stop.Fault.Kind != FaultAccess {
					t.Fatalf("fault %+v", stop.Fault)
				}
				break
			}
			if stop.Kind != StopLimit {
				t.Fatalf("stop %+v", stop)
			}
		}
		return h.Mem
	}
	interp := run(true, 0)
	blocks := run(false, 0)
	traces := run(false, 2)
	if want := uint64(200*2 + 1); interp.N != want {
		t.Fatalf("interpreter logged %d accesses, want %d", interp.N, want)
	}
	last := interp.Entry(interp.Len() - 1)
	if last.Addr != 0 || last.Size != 8 || last.Write {
		t.Fatalf("faulting access not final entry: %+v", last)
	}
	for tier, log := range map[string]*instrument.MemTrace{"blocks": blocks, "traces": traces} {
		if log.N != interp.N {
			t.Errorf("%s: logged %d accesses, interpreter %d", tier, log.N, interp.N)
			continue
		}
		for i := 0; i < interp.Len(); i++ {
			if log.Entry(i) != interp.Entry(i) {
				t.Errorf("%s: entry %d = %+v, interpreter %+v", tier, i, log.Entry(i), interp.Entry(i))
				break
			}
		}
	}
}

// TestNilObserversCompileIdenticalUops is the zero-cost-when-off contract
// at the µop level: a CPU with no hooks, and one with a hook set holding no
// observers, must build bit-identical blocks (hook flags all zero).
func TestNilObserversCompileIdenticalUops(t *testing.T) {
	text := enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.SD, Rs1: riscv.SP, Rs2: riscv.A0, Imm: -8},
		riscv.Inst{Op: riscv.BNE, Rs1: riscv.A0, Rs2: riscv.A2, Imm: -8},
	)
	bare := codeCPU(t, text)
	hooked := codeCPU(t, text)
	hooked.SetHooks(&instrument.Hooks{
		Indirect: func(pc, target uint64) (uint64, uint64) { return target, 0 },
	})
	if hooked.obs != 0 {
		t.Fatalf("observer mask %#x with no observers installed", hooked.obs)
	}
	a := bare.blockFor(obj.TextBase)
	b := hooked.blockFor(obj.TextBase)
	if a == nil || b == nil {
		t.Fatal("block build failed")
	}
	if len(a.uops) != len(b.uops) {
		t.Fatalf("uop counts differ: %d vs %d", len(a.uops), len(b.uops))
	}
	for i := range a.uops {
		if a.uops[i] != b.uops[i] {
			t.Errorf("uop %d differs: %+v vs %+v", i, a.uops[i], b.uops[i])
		}
		if a.uops[i].hook != 0 {
			t.Errorf("uop %d carries hook flags %#x with no observers", i, a.uops[i].hook)
		}
	}
}

// TestObserverFlipRekeysTranslations: installing a cmp/mem observer changes
// the translation key, so stale blocks rebuild with hook flags burned in —
// and uninstalling rebuilds them clean again. Swapping only the indirect
// hook must NOT invalidate anything (it is runtime-checked).
func TestObserverFlipRekeysTranslations(t *testing.T) {
	text := enc(t,
		riscv.Inst{Op: riscv.ADDI, Rd: riscv.A0, Rs1: riscv.A0, Imm: 1},
		riscv.Inst{Op: riscv.BNE, Rs1: riscv.A0, Rs2: riscv.A2, Imm: -4},
		riscv.Inst{Op: riscv.EBREAK},
	)
	cpu := codeCPU(t, text)
	cpu.X[riscv.A2] = 1 << 40 // never taken: loop forever under slices
	if stop := cpu.Run(100); stop.Kind != StopLimit {
		t.Fatalf("stop: %+v", stop)
	}
	built := cpu.Blocks.Built

	// Indirect hook swap: no rebuild.
	h := &instrument.Hooks{Indirect: func(pc, target uint64) (uint64, uint64) { return target, 0 }}
	cpu.SetHooks(h)
	if stop := cpu.Run(100); stop.Kind != StopLimit {
		t.Fatalf("stop: %+v", stop)
	}
	if cpu.Blocks.Built != built {
		t.Fatalf("indirect hook swap rebuilt translations: %d -> %d", built, cpu.Blocks.Built)
	}

	// Observer install: rebuild with hook flags.
	h.Cmp = instrument.NewCmpLog()
	cpu.RefreshHooks()
	if stop := cpu.Run(100); stop.Kind != StopLimit {
		t.Fatalf("stop: %+v", stop)
	}
	if cpu.Blocks.Built == built {
		t.Fatal("cmp observer install did not rekey translations")
	}
	if h.Cmp.N == 0 {
		t.Fatal("rebuilt block logs no comparisons")
	}
	blk := cpu.blockFor(obj.TextBase)
	if blk == nil || blk.obs != hookCmp {
		t.Fatalf("rebuilt block obs = %#x, want hookCmp", blk.obs)
	}

	// Observer uninstall: rebuild clean.
	h.Cmp = nil
	cpu.RefreshHooks()
	if stop := cpu.Run(100); stop.Kind != StopLimit {
		t.Fatalf("stop: %+v", stop)
	}
	blk = cpu.blockFor(obj.TextBase)
	if blk == nil || blk.obs != 0 {
		t.Fatalf("block after uninstall obs = %#x, want 0", blk.obs)
	}
	for i := range blk.uops {
		if blk.uops[i].hook != 0 {
			t.Fatalf("uop %d keeps hook flags after observer uninstall", i)
		}
	}
}
