package asm

import (
	"strings"
	"testing"

	"github.com/eurosys26p57/chimera/internal/emu"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

const dotSource = `
# dot product of two arrays, result (as int) in a0
.option isa rv64gcv
.option compress on

.data
vecA:
    .double 1.0, 2.0, 3.0, 4.0
vecB:
    .double 2.0, 2.0, 2.0, 2.0
scratch:
    .zero 64

.text
.global main
main:
    la   a0, vecA
    la   a1, vecB
    li   a2, 4
    fcvt.d.l fa0, zero
    call dot
    fcvt.l.d a0, fa0
    ecall

.global dot
dot:
    fld  ft0, 0(a0)
    fld  ft1, 0(a1)
    fmadd.d fa0, ft0, ft1, fa0
    addi a0, a0, 8
    addi a1, a1, 8
    addi a2, a2, -1
    bnez a2, dot
    ret
`

func TestAssembleDot(t *testing.T) {
	img, err := Assemble(dotSource, "dot", "main")
	if err != nil {
		t.Fatal(err)
	}
	mem := emu.NewMemory()
	mem.MapImage(img)
	cpu := emu.NewCPU(mem, img.ISA)
	cpu.Reset(img)
	stop := cpu.Run(100000)
	if stop.Kind != emu.StopEcall {
		t.Fatalf("stop %+v", stop)
	}
	if got := int64(cpu.X[riscv.A0]); got != 20 {
		t.Errorf("dot = %d, want 20", got)
	}
}

func TestAssembleVector(t *testing.T) {
	src := `
.option isa rv64gcv
.data
vals:
    .dword 1, 2, 3, 4
out:
    .zero 32
.text
.global main
main:
    la a1, vals
    la a2, out
    li a3, 4
    vsetvli t0, a3, e64
    vle64.v v1, (a1)
    vadd.vv v2, v1, v1
    vse64.v v2, (a2)
    ld a0, 24(a2)
    ecall
`
	img, err := Assemble(src, "v", "main")
	if err != nil {
		t.Fatal(err)
	}
	mem := emu.NewMemory()
	mem.MapImage(img)
	cpu := emu.NewCPU(mem, img.ISA)
	cpu.Reset(img)
	if stop := cpu.Run(1000); stop.Kind != emu.StopEcall {
		t.Fatalf("stop %+v", stop)
	}
	if cpu.X[riscv.A0] != 8 {
		t.Errorf("a0 = %d, want 8", cpu.X[riscv.A0])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown mnemonic", ".text\n.global main\nmain:\n frobnicate a0\n"},
		{"bad register", ".text\n.global main\nmain:\n addi q7, a0, 1\n"},
		{"bad directive", ".frob 12\n"},
		{"inst in data", ".data\n addi a0, a0, 1\n"},
		{"dword without label", ".data\n.dword 5\n"},
		{"vector in rv64gc", ".text\n.global main\nmain:\n vadd.vv v1, v2, v3\n ecall\n"},
		{"bad label", "1bad!label:\n"},
		{"bad imm", ".text\n.global main\nmain:\n addi a0, a0, zzz\n"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src, "t", "main"); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestAssembleSpace(t *testing.T) {
	src := ".text\n.global main\nmain:\n li a0, 1\n ecall\n.space 8192\n"
	img, err := Assemble(src, "t", "main")
	if err != nil {
		t.Fatal(err)
	}
	if img.CodeSize() < 8192 {
		t.Errorf("code size %d, want >= 8192", img.CodeSize())
	}
}

func TestAssembleErrorHasLineNumber(t *testing.T) {
	_, err := Assemble(".text\n.global main\nmain:\n nop\n bogus a0\n", "t", "main")
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Errorf("error should name line 5: %v", err)
	}
}
