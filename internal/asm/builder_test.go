package asm

import (
	"math/rand"
	"testing"

	"github.com/eurosys26p57/chimera/internal/emu"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

// runToEcall builds the image, loads it on a hart and runs until the first
// ecall, returning the CPU for register inspection.
func runToEcall(t *testing.T, b *Builder, entry string) *emu.CPU {
	t.Helper()
	img, err := b.Build("test", entry)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mem := emu.NewMemory()
	mem.MapImage(img)
	cpu := emu.NewCPU(mem, img.ISA)
	cpu.Reset(img)
	stop := cpu.Run(2_000_000)
	if stop.Kind != emu.StopEcall {
		t.Fatalf("program did not reach ecall: stop=%+v last=%v pc=%#x", stop, cpu.LastInst, cpu.PC)
	}
	return cpu
}

func TestBuilderFib(t *testing.T) {
	b := NewBuilder(riscv.RV64GC)
	b.Func("main")
	b.Li(riscv.A0, 15)
	b.Call("fib")
	b.Ecall() // result in a0

	// Iterative Fibonacci.
	b.Func("fib")
	b.Li(riscv.T0, 0) // f(0)
	b.Li(riscv.T1, 1) // f(1)
	b.Label("loop")
	b.Beq(riscv.A0, riscv.Zero, "done")
	b.Op(riscv.ADD, riscv.T2, riscv.T0, riscv.T1)
	b.Mv(riscv.T0, riscv.T1)
	b.Mv(riscv.T1, riscv.T2)
	b.Imm(riscv.ADDI, riscv.A0, riscv.A0, -1)
	b.J("loop")
	b.Label("done")
	b.Mv(riscv.A0, riscv.T0)
	b.Ret()

	cpu := runToEcall(t, b, "main")
	if got := cpu.X[riscv.A0]; got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestBuilderLiExhaustive(t *testing.T) {
	vals := []int64{0, 1, -1, 2047, -2048, 2048, -2049, 1 << 20, -(1 << 20),
		0x7FFFF7FF, 0x7FFFF800, 0x7FFFFFFF, -0x80000000, 1 << 40, -(1 << 40),
		0x123456789ABCDEF0, -0x123456789ABCDEF0, int64(^uint64(0) >> 1), -1 << 63}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		vals = append(vals, rng.Int63()-rng.Int63())
	}
	for _, v := range vals {
		b := NewBuilder(riscv.RV64GC)
		b.Func("main")
		b.Li(riscv.A0, v)
		b.Ecall()
		cpu := runToEcall(t, b, "main")
		if got := int64(cpu.X[riscv.A0]); got != v {
			t.Fatalf("Li(%#x) materialized %#x", v, got)
		}
	}
}

func TestBuilderLaAndData(t *testing.T) {
	b := NewBuilder(riscv.RV64GC)
	b.DataI64("nums", []int64{11, 22, 33})
	b.Func("main")
	b.La(riscv.A1, "nums")
	b.Load(riscv.LD, riscv.A0, riscv.A1, 16)
	b.Ecall()
	cpu := runToEcall(t, b, "main")
	if got := cpu.X[riscv.A0]; got != 33 {
		t.Errorf("loaded %d, want 33", got)
	}
}

func TestBuilderCompressedEmission(t *testing.T) {
	plain := NewBuilder(riscv.RV64GC)
	comp := NewBuilder(riscv.RV64GC)
	comp.Compress = true
	emit := func(b *Builder) {
		b.Func("main")
		for i := 0; i < 20; i++ {
			b.Imm(riscv.ADDI, riscv.A0, riscv.A0, 1)
		}
		b.Ecall()
	}
	emit(plain)
	emit(comp)
	pi, err := plain.Build("p", "main")
	if err != nil {
		t.Fatal(err)
	}
	ci, err := comp.Build("c", "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(ci.Text().Data) >= len(pi.Text().Data) {
		t.Errorf("compressed text (%d bytes) not smaller than plain (%d bytes)",
			len(ci.Text().Data), len(pi.Text().Data))
	}
	// Both must compute the same result.
	for _, img := range []*obj.Image{pi, ci} {
		mem := emu.NewMemory()
		mem.MapImage(img)
		cpu := emu.NewCPU(mem, img.ISA)
		cpu.Reset(img)
		if stop := cpu.Run(1000); stop.Kind != emu.StopEcall {
			t.Fatalf("%s: %+v", img.Name, stop)
		} else if cpu.X[riscv.A0] != 20 {
			t.Errorf("%s: a0 = %d, want 20", img.Name, cpu.X[riscv.A0])
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(riscv.RV64GC) // no V extension
	b.Func("main")
	b.I(riscv.Inst{Op: riscv.VADDVV, Rd: 1, Rs1: 2, Rs2: 3})
	if _, err := b.Build("t", "main"); err == nil {
		t.Error("vector instruction accepted into an rv64gc binary")
	}

	b2 := NewBuilder(riscv.RV64GC)
	b2.Func("main")
	b2.J("nowhere")
	if _, err := b2.Build("t", "main"); err == nil {
		t.Error("undefined label accepted")
	}

	b3 := NewBuilder(riscv.RV64GC)
	b3.Label("dup")
	b3.Label("dup")
	b3.Func("main")
	if _, err := b3.Build("t", "main"); err == nil {
		t.Error("duplicate label accepted")
	}

	b4 := NewBuilder(riscv.RV64GC)
	b4.Func("main")
	if _, err := b4.Build("t", "missing"); err == nil {
		t.Error("missing entry accepted")
	}
}

func TestBuilderCallFar(t *testing.T) {
	// Call must work across a large text section (beyond jal's ±1MB).
	b := NewBuilder(riscv.RV64GC)
	b.Func("main")
	b.Call("far")
	b.Ecall()
	for i := 0; i < 300_000; i++ { // ~1.2MB of nops
		b.Nop()
	}
	b.Func("far")
	b.Li(riscv.A0, 77)
	b.Ret()
	cpu := runToEcall(t, b, "main")
	if cpu.X[riscv.A0] != 77 {
		t.Errorf("far call result %d, want 77", cpu.X[riscv.A0])
	}
}

func TestAlign(t *testing.T) {
	b := NewBuilder(riscv.RV64GC)
	b.Func("main")
	b.Nop()
	b.Align(16)
	if b.PC()%16 != 0 {
		t.Errorf("PC %% 16 = %d after Align(16)", b.PC()%16)
	}
	b.Ecall()
	if _, err := b.Build("t", "main"); err != nil {
		t.Fatal(err)
	}
}
