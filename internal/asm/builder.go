// Package asm builds executable images programmatically (Builder) and from
// assembler text (Assemble). It is the stand-in for the paper's compiler
// toolchain: workload generators use it to produce the original binaries
// that Chimera then rewrites.
package asm

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

type fixupKind uint8

const (
	fixBranch fixupKind = iota // conditional branch to label
	fixJal                     // jal to label
	fixCall                    // auipc+jalr pair to label
	fixLa                      // auipc+addi pair to any symbol
)

type fixup struct {
	off   uint64 // text offset of the (first) instruction
	label string
	kind  fixupKind
	inst  riscv.Inst
}

type dataItem struct {
	name string
	data []byte
	// align is the required alignment of the item start.
	align uint64
}

// Builder assembles one image. Methods record the first error encountered;
// Build reports it. This keeps straight-line emission code readable.
type Builder struct {
	// ISA declares the extension set instructions may come from. Emitting an
	// instruction outside the set is an error: it catches workload bugs where
	// a "base version" binary accidentally contains vector instructions.
	ISA riscv.Ext
	// Compress, when the ISA includes C, emits 2-byte encodings for eligible
	// non-control instructions.
	Compress bool

	text   []byte
	labels map[string]uint64
	fixups []fixup
	syms   []obj.Symbol // function symbols, addr = text offset until Build

	rodata []dataItem
	data   []dataItem
	err    error
}

// NewBuilder returns a Builder targeting the given extension set.
func NewBuilder(isa riscv.Ext) *Builder {
	return &Builder{ISA: isa, labels: make(map[string]uint64)}
}

func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// PC returns the current text offset (not yet relocated to TextBase).
func (b *Builder) PC() uint64 { return uint64(len(b.text)) }

// Label defines a label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.setErr(fmt.Errorf("asm: duplicate label %q", name))
		return
	}
	b.labels[name] = b.PC()
}

// Func defines a label and records a function symbol, seeding recursive
// disassembly.
func (b *Builder) Func(name string) {
	b.Label(name)
	b.syms = append(b.syms, obj.Symbol{Name: name, Addr: b.PC(), Kind: obj.SymFunc})
}

// I emits one instruction.
func (b *Builder) I(inst riscv.Inst) {
	if ext := inst.Extension(); !b.ISA.Has(ext) {
		b.setErr(fmt.Errorf("asm: %s requires extension %v not in target ISA %v",
			inst, ext, b.ISA))
		return
	}
	if b.Compress && b.ISA.Has(riscv.ExtC) && !inst.IsControl() {
		if p, err := riscv.EncodeCompressed(inst); err == nil {
			b.text = binary.LittleEndian.AppendUint16(b.text, p)
			return
		}
	}
	w, err := riscv.Encode(inst)
	if err != nil {
		b.setErr(err)
		return
	}
	b.text = binary.LittleEndian.AppendUint32(b.text, w)
}

// Raw emits a raw 32-bit word (used by tests to plant specific encodings).
func (b *Builder) Raw(w uint32) { b.text = binary.LittleEndian.AppendUint32(b.text, w) }

// Op is shorthand for I with an R-type register instruction.
func (b *Builder) Op(op riscv.Op, rd, rs1, rs2 riscv.Reg) {
	b.I(riscv.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Imm is shorthand for I with an immediate instruction.
func (b *Builder) Imm(op riscv.Op, rd, rs1 riscv.Reg, imm int64) {
	b.I(riscv.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Load emits a load of the given width.
func (b *Builder) Load(op riscv.Op, rd, base riscv.Reg, off int64) {
	b.I(riscv.Inst{Op: op, Rd: rd, Rs1: base, Imm: off})
}

// Store emits a store of the given width.
func (b *Builder) Store(op riscv.Op, src, base riscv.Reg, off int64) {
	b.I(riscv.Inst{Op: op, Rs1: base, Rs2: src, Imm: off})
}

// Nop emits a canonical 4-byte nop (addi x0, x0, 0), never compressed. Use
// CNop for the 2-byte form.
func (b *Builder) Nop() {
	w := riscv.MustEncode(riscv.Inst{Op: riscv.ADDI})
	b.text = binary.LittleEndian.AppendUint32(b.text, w)
}

// CNop emits a 2-byte compressed nop.
func (b *Builder) CNop() {
	if !b.ISA.Has(riscv.ExtC) {
		b.setErr(fmt.Errorf("asm: c.nop requires the C extension"))
		return
	}
	b.text = binary.LittleEndian.AppendUint16(b.text, riscv.CNop)
}

// Space reserves n bytes of zero-filled text. Real binaries carry such
// regions (cold code, literal pools, padding); recursive disassembly never
// enters them, and they make code sections as large as the paper's >1MB
// benchmark binaries without inflating the hot instruction count.
func (b *Builder) Space(n int) {
	b.text = append(b.text, make([]byte, n)...)
}

// Align pads the text with nops to the given power-of-two alignment.
func (b *Builder) Align(n uint64) {
	for b.PC()%n != 0 {
		if b.PC()%4 != 0 && b.ISA.Has(riscv.ExtC) {
			b.CNop()
		} else {
			b.Nop()
		}
	}
}

// Li loads an arbitrary 64-bit constant into rd using lui/addi/slli
// sequences, choosing the shortest form for small values.
func (b *Builder) Li(rd riscv.Reg, v int64) {
	switch {
	case v >= -2048 && v < 2048:
		b.Imm(riscv.ADDI, rd, riscv.Zero, v)
	case v >= -(1<<31) && v < 1<<31-1<<11:
		hi := (v + 0x800) >> 12
		lo := v - hi<<12
		b.I(riscv.Inst{Op: riscv.LUI, Rd: rd, Imm: hi})
		b.Imm(riscv.ADDIW, rd, rd, lo)
	default:
		// Standard RV64 materialization: peel the low 12 bits, build the rest
		// recursively, shift it up, then add the low part back.
		lo := v << 52 >> 52
		hi := (v - lo) >> 12
		b.Li(rd, hi)
		b.Imm(riscv.SLLI, rd, rd, 12)
		if lo != 0 {
			b.Imm(riscv.ADDI, rd, rd, lo)
		}
	}
}

// Mv copies rs into rd.
func (b *Builder) Mv(rd, rs riscv.Reg) { b.Op(riscv.ADD, rd, riscv.Zero, rs) }

// Branch emits a conditional branch to a label.
func (b *Builder) Branch(op riscv.Op, rs1, rs2 riscv.Reg, label string) {
	b.fixups = append(b.fixups, fixup{off: b.PC(), label: label, kind: fixBranch,
		inst: riscv.Inst{Op: op, Rs1: rs1, Rs2: rs2}})
	b.Raw(0)
}

// Beq and friends emit conditional branches to labels.
func (b *Builder) Beq(rs1, rs2 riscv.Reg, label string)  { b.Branch(riscv.BEQ, rs1, rs2, label) }
func (b *Builder) Bne(rs1, rs2 riscv.Reg, label string)  { b.Branch(riscv.BNE, rs1, rs2, label) }
func (b *Builder) Blt(rs1, rs2 riscv.Reg, label string)  { b.Branch(riscv.BLT, rs1, rs2, label) }
func (b *Builder) Bge(rs1, rs2 riscv.Reg, label string)  { b.Branch(riscv.BGE, rs1, rs2, label) }
func (b *Builder) Bltu(rs1, rs2 riscv.Reg, label string) { b.Branch(riscv.BLTU, rs1, rs2, label) }
func (b *Builder) Bgeu(rs1, rs2 riscv.Reg, label string) { b.Branch(riscv.BGEU, rs1, rs2, label) }

// J emits an unconditional jump to a label.
func (b *Builder) J(label string) {
	b.fixups = append(b.fixups, fixup{off: b.PC(), label: label, kind: fixJal,
		inst: riscv.Inst{Op: riscv.JAL, Rd: riscv.Zero}})
	b.Raw(0)
}

// Call emits a range-independent call (auipc ra / jalr ra) to a label.
func (b *Builder) Call(label string) {
	b.fixups = append(b.fixups, fixup{off: b.PC(), label: label, kind: fixCall})
	b.Raw(0)
	b.Raw(0)
}

// Ret returns via ra.
func (b *Builder) Ret() { b.I(riscv.Inst{Op: riscv.JALR, Rd: riscv.Zero, Rs1: riscv.RA}) }

// Jr jumps indirectly through rs.
func (b *Builder) Jr(rs riscv.Reg) { b.I(riscv.Inst{Op: riscv.JALR, Rd: riscv.Zero, Rs1: rs}) }

// Ecall emits an environment call.
func (b *Builder) Ecall() { b.I(riscv.Inst{Op: riscv.ECALL}) }

// Ebreak emits a breakpoint.
func (b *Builder) Ebreak() { b.I(riscv.Inst{Op: riscv.EBREAK}) }

// La loads the absolute address of a symbol or label using a pc-relative
// auipc/addi pair.
func (b *Builder) La(rd riscv.Reg, symbol string) {
	b.fixups = append(b.fixups, fixup{off: b.PC(), label: symbol, kind: fixLa,
		inst: riscv.Inst{Rd: rd}})
	b.Raw(0)
	b.Raw(0)
}

// Rodata places bytes in .rodata under the given symbol name.
func (b *Builder) Rodata(name string, data []byte) {
	b.rodata = append(b.rodata, dataItem{name: name, data: data, align: 8})
}

// Data places bytes in .data under the given symbol name.
func (b *Builder) Data(name string, data []byte) {
	b.data = append(b.data, dataItem{name: name, data: data, align: 8})
}

// Zero reserves n zeroed bytes in .data.
func (b *Builder) Zero(name string, n int) {
	b.data = append(b.data, dataItem{name: name, data: make([]byte, n), align: 16})
}

// DataF64 places float64 values in .data.
func (b *Builder) DataF64(name string, vals []float64) {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	b.Data(name, buf)
}

// DataI64 places int64 values in .data.
func (b *Builder) DataI64(name string, vals []int64) {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
	b.Data(name, buf)
}

// Build lays out the image, resolves fixups and returns the final binary.
func (b *Builder) Build(name, entry string) (*obj.Image, error) {
	if b.err != nil {
		return nil, b.err
	}
	textAddr := obj.TextBase
	rodataAddr := obj.AlignUp(textAddr+uint64(len(b.text)), obj.PageSize)
	layout := func(items []dataItem, base uint64) (map[string]uint64, []byte) {
		addrs := make(map[string]uint64, len(items))
		var blob []byte
		for _, it := range items {
			pad := int(obj.AlignUp(base+uint64(len(blob)), it.align) - (base + uint64(len(blob))))
			blob = append(blob, make([]byte, pad)...)
			addrs[it.name] = base + uint64(len(blob))
			blob = append(blob, it.data...)
		}
		return addrs, blob
	}
	roAddrs, roBlob := layout(b.rodata, rodataAddr)
	dataAddr := obj.AlignUp(rodataAddr+uint64(len(roBlob))+1, obj.PageSize)
	dAddrs, dBlob := layout(b.data, dataAddr)
	sdataAddr := obj.AlignUp(dataAddr+uint64(len(dBlob))+1, obj.PageSize)

	resolve := func(sym string) (uint64, bool) {
		if off, ok := b.labels[sym]; ok {
			return textAddr + off, true
		}
		if a, ok := roAddrs[sym]; ok {
			return a, true
		}
		if a, ok := dAddrs[sym]; ok {
			return a, true
		}
		return 0, false
	}

	for _, f := range b.fixups {
		target, ok := resolve(f.label)
		if !ok {
			return nil, fmt.Errorf("asm: undefined symbol %q", f.label)
		}
		pc := textAddr + f.off
		delta := int64(target) - int64(pc)
		switch f.kind {
		case fixBranch:
			inst := f.inst
			inst.Imm = delta
			w, err := riscv.Encode(inst)
			if err != nil {
				return nil, fmt.Errorf("asm: branch to %q at %#x: %w", f.label, pc, err)
			}
			binary.LittleEndian.PutUint32(b.text[f.off:], w)
		case fixJal:
			inst := f.inst
			inst.Imm = delta
			w, err := riscv.Encode(inst)
			if err != nil {
				return nil, fmt.Errorf("asm: jump to %q at %#x: %w", f.label, pc, err)
			}
			binary.LittleEndian.PutUint32(b.text[f.off:], w)
		case fixCall, fixLa:
			rd := riscv.RA
			second := riscv.JALR
			if f.kind == fixLa {
				rd = f.inst.Rd
				second = riscv.ADDI
			}
			hi := (delta + 0x800) >> 12
			lo := delta - hi<<12
			if hi < -(1<<19) || hi >= 1<<19 {
				return nil, fmt.Errorf("asm: %q out of ±2GB range from %#x", f.label, pc)
			}
			w1 := riscv.MustEncode(riscv.Inst{Op: riscv.AUIPC, Rd: rd, Imm: hi})
			w2 := riscv.MustEncode(riscv.Inst{Op: second, Rd: rd, Rs1: rd, Imm: lo})
			binary.LittleEndian.PutUint32(b.text[f.off:], w1)
			binary.LittleEndian.PutUint32(b.text[f.off+4:], w2)
		}
	}

	entryOff, ok := b.labels[entry]
	if !ok {
		return nil, fmt.Errorf("asm: undefined entry symbol %q", entry)
	}

	img := &obj.Image{
		Name:  name,
		Entry: textAddr + entryOff,
		GP:    sdataAddr + obj.GPOffset,
		ISA:   b.ISA,
	}
	img.AddSection(&obj.Section{Name: obj.SecText, Addr: textAddr, Data: b.text, Perm: obj.PermRX})
	if len(roBlob) > 0 {
		img.AddSection(&obj.Section{Name: obj.SecRodata, Addr: rodataAddr, Data: roBlob, Perm: obj.PermR})
	}
	if len(dBlob) > 0 {
		img.AddSection(&obj.Section{Name: obj.SecData, Addr: dataAddr, Data: dBlob, Perm: obj.PermRW})
	}
	// .sdata always exists: it anchors gp.
	img.AddSection(&obj.Section{Name: obj.SecSData, Addr: sdataAddr, Data: make([]byte, obj.PageSize), Perm: obj.PermRW})

	for _, sym := range b.syms {
		sym.Addr += textAddr
		img.Symbols = append(img.Symbols, sym)
	}
	// Emit data symbols in declaration order, not map order: the image's
	// wire form must be reproducible byte-for-byte — the service's rewrite
	// cache content-addresses images, so two builds of the same program
	// must hash identically.
	for _, it := range b.rodata {
		img.Symbols = append(img.Symbols, obj.Symbol{Name: it.name, Addr: roAddrs[it.name], Kind: obj.SymObject})
	}
	for _, it := range b.data {
		img.Symbols = append(img.Symbols, obj.Symbol{Name: it.name, Addr: dAddrs[it.name], Kind: obj.SymObject})
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}
