package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

// Assemble parses assembler text into an image. The dialect is a practical
// subset of GNU as for RISC-V:
//
//	.text / .data                    section switches
//	.global name                     mark a function symbol
//	.option isa rv64gcv              target ISA (default rv64gc)
//	.option compress on|off          compressed emission
//	.dword v, v, ...                 64-bit data values
//	.double v, v, ...                float64 data values
//	.zero n                          n zeroed data bytes
//	.space n                         n zeroed text bytes (cold region)
//	label:                           labels (in .text) / symbols (in .data)
//	mnemonic operands                one instruction per line; # comments
//
// Supported pseudo-instructions: li, la, mv, nop, j, call, ret, jr, beqz,
// bnez. Loads/stores use "rd, imm(rs1)" syntax; branches "rs1, rs2, label".
func Assemble(src, name, entry string) (*obj.Image, error) {
	a := &assembler{
		isa:     riscv.RV64GC,
		globals: map[string]bool{},
	}
	a.b = NewBuilder(a.isa)
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := a.line(line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %q: %w", ln+1, strings.TrimSpace(raw), err)
		}
	}
	a.flushData()
	return a.b.Build(name, entry)
}

type assembler struct {
	b        *Builder
	isa      riscv.Ext
	inData   bool
	dataName string
	dataBuf  []byte
	globals  map[string]bool
}

func (a *assembler) flushData() {
	if a.dataName != "" {
		a.b.Data(a.dataName, a.dataBuf)
		a.dataName, a.dataBuf = "", nil
	}
}

func (a *assembler) line(line string) error {
	// Label?
	if strings.HasSuffix(line, ":") {
		label := strings.TrimSuffix(line, ":")
		if !validIdent(label) {
			return fmt.Errorf("bad label %q", label)
		}
		if a.inData {
			a.flushData()
			a.dataName = label
			return nil
		}
		if a.globals[label] {
			a.b.Func(label)
		} else {
			a.b.Label(label)
		}
		return nil
	}
	fields := strings.SplitN(line, " ", 2)
	mnem := strings.ToLower(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	if strings.HasPrefix(mnem, ".") {
		return a.directive(mnem, rest)
	}
	if a.inData {
		return fmt.Errorf("instruction %q in .data", mnem)
	}
	return a.inst(mnem, splitOperands(rest))
}

func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !(r == '_' || r == '.' || r >= '0' && r <= '9' ||
			r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
			return false
		}
	}
	return true
}

func (a *assembler) directive(d, rest string) error {
	switch d {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
	case ".global", ".globl":
		// Marks the named label as a function symbol (defined by the label
		// itself, as in GNU as).
		if !validIdent(rest) {
			return fmt.Errorf("bad symbol %q", rest)
		}
		a.globals[rest] = true
	case ".option":
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return fmt.Errorf("usage: .option isa|compress value")
		}
		switch parts[0] {
		case "isa":
			isa, err := parseISA(parts[1])
			if err != nil {
				return err
			}
			a.isa = isa
			a.b.ISA = isa
		case "compress":
			a.b.Compress = parts[1] == "on"
		default:
			return fmt.Errorf("unknown option %q", parts[0])
		}
	case ".dword":
		if !a.inData || a.dataName == "" {
			return fmt.Errorf(".dword needs a preceding data label")
		}
		for _, op := range splitOperands(rest) {
			v, err := parseImm(op)
			if err != nil {
				return err
			}
			for i := 0; i < 8; i++ {
				a.dataBuf = append(a.dataBuf, byte(uint64(v)>>(8*i)))
			}
		}
	case ".double":
		if !a.inData || a.dataName == "" {
			return fmt.Errorf(".double needs a preceding data label")
		}
		for _, op := range splitOperands(rest) {
			f, err := strconv.ParseFloat(op, 64)
			if err != nil {
				return err
			}
			bits := math.Float64bits(f)
			for i := 0; i < 8; i++ {
				a.dataBuf = append(a.dataBuf, byte(bits>>(8*i)))
			}
		}
	case ".zero":
		if !a.inData || a.dataName == "" {
			return fmt.Errorf(".zero needs a preceding data label")
		}
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return fmt.Errorf("bad .zero size %q", rest)
		}
		a.dataBuf = append(a.dataBuf, make([]byte, n)...)
	case ".space":
		if a.inData {
			return fmt.Errorf(".space belongs in .text")
		}
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return fmt.Errorf("bad .space size %q", rest)
		}
		a.b.Space(n)
	default:
		return fmt.Errorf("unknown directive %q", d)
	}
	return nil
}

func parseISA(s string) (riscv.Ext, error) {
	switch strings.ToLower(s) {
	case "rv64g":
		return riscv.RV64G, nil
	case "rv64gc":
		return riscv.RV64GC, nil
	case "rv64gcv":
		return riscv.RV64GCV, nil
	case "rv64gcb":
		return riscv.RV64GC | riscv.ExtB, nil
	case "rv64gcvb", "rv64gcbv":
		return riscv.RV64GCV | riscv.ExtB, nil
	}
	return 0, fmt.Errorf("unknown isa %q", s)
}

var regByName = func() map[string]riscv.Reg {
	m := map[string]riscv.Reg{}
	for r := riscv.Reg(0); r < 32; r++ {
		m[r.Name()] = r
		m[fmt.Sprintf("x%d", r)] = r
		m[fmt.Sprintf("f%d", r)] = r
		m[fmt.Sprintf("v%d", r)] = r
	}
	m["fp"] = riscv.S0
	// fp register ABI names
	fnames := []string{"ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
		"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
		"fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
		"fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"}
	for i, n := range fnames {
		m[n] = riscv.Reg(i)
	}
	return m
}()

func parseReg(s string) (riscv.Reg, error) {
	if r, ok := regByName[strings.ToLower(s)]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("unknown register %q", s)
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses "imm(rs)" memory operands.
func parseMem(s string) (int64, riscv.Reg, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off := int64(0)
	if open > 0 {
		v, err := parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return off, r, nil
}

// mnemonic tables for regular encodings.
var rOps = map[string]riscv.Op{
	"add": riscv.ADD, "sub": riscv.SUB, "sll": riscv.SLL, "slt": riscv.SLT,
	"sltu": riscv.SLTU, "xor": riscv.XOR, "srl": riscv.SRL, "sra": riscv.SRA,
	"or": riscv.OR, "and": riscv.AND, "addw": riscv.ADDW, "subw": riscv.SUBW,
	"sllw": riscv.SLLW, "srlw": riscv.SRLW, "sraw": riscv.SRAW,
	"mul": riscv.MUL, "mulh": riscv.MULH, "mulhsu": riscv.MULHSU, "mulhu": riscv.MULHU,
	"div": riscv.DIV, "divu": riscv.DIVU, "rem": riscv.REM, "remu": riscv.REMU,
	"mulw": riscv.MULW, "divw": riscv.DIVW, "divuw": riscv.DIVUW,
	"remw": riscv.REMW, "remuw": riscv.REMUW,
	"sh1add": riscv.SH1ADD, "sh2add": riscv.SH2ADD, "sh3add": riscv.SH3ADD,
	"andn": riscv.ANDN, "orn": riscv.ORN, "xnor": riscv.XNOR,
	"fadd.s": riscv.FADDS, "fsub.s": riscv.FSUBS, "fmul.s": riscv.FMULS, "fdiv.s": riscv.FDIVS,
	"fadd.d": riscv.FADDD, "fsub.d": riscv.FSUBD, "fmul.d": riscv.FMULD, "fdiv.d": riscv.FDIVD,
	"fsgnj.s": riscv.FSGNJS, "fsgnj.d": riscv.FSGNJD,
	"feq.d": riscv.FEQD, "flt.d": riscv.FLTD, "fle.d": riscv.FLED,
}

var iOps = map[string]riscv.Op{
	"addi": riscv.ADDI, "slti": riscv.SLTI, "sltiu": riscv.SLTIU,
	"xori": riscv.XORI, "ori": riscv.ORI, "andi": riscv.ANDI,
	"slli": riscv.SLLI, "srli": riscv.SRLI, "srai": riscv.SRAI,
	"addiw": riscv.ADDIW, "slliw": riscv.SLLIW, "srliw": riscv.SRLIW, "sraiw": riscv.SRAIW,
}

var loadOps = map[string]riscv.Op{
	"lb": riscv.LB, "lh": riscv.LH, "lw": riscv.LW, "ld": riscv.LD,
	"lbu": riscv.LBU, "lhu": riscv.LHU, "lwu": riscv.LWU,
	"flw": riscv.FLW, "fld": riscv.FLD,
}

var storeOps = map[string]riscv.Op{
	"sb": riscv.SB, "sh": riscv.SH, "sw": riscv.SW, "sd": riscv.SD,
	"fsw": riscv.FSW, "fsd": riscv.FSD,
}

var branchOps = map[string]riscv.Op{
	"beq": riscv.BEQ, "bne": riscv.BNE, "blt": riscv.BLT,
	"bge": riscv.BGE, "bltu": riscv.BLTU, "bgeu": riscv.BGEU,
}

var cvtOps = map[string]riscv.Op{
	"fcvt.s.l": riscv.FCVTSL, "fcvt.d.l": riscv.FCVTDL, "fcvt.l.d": riscv.FCVTLD,
	"fmv.x.d": riscv.FMVXD, "fmv.d.x": riscv.FMVDX,
	"fmv.x.w": riscv.FMVXW, "fmv.w.x": riscv.FMVWX,
}

var vArith = map[string]riscv.Op{
	"vadd.vv": riscv.VADDVV, "vmul.vv": riscv.VMULVV,
	"vfadd.vv": riscv.VFADDVV, "vfmul.vv": riscv.VFMULVV, "vfmacc.vv": riscv.VFMACCVV,
	"vfredusum.vs": riscv.VFREDUSUMVS,
}

func (a *assembler) inst(mnem string, ops []string) (retErr error) {
	b := a.b
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}
	r := func(i int) riscv.Reg {
		reg, err := parseReg(ops[i])
		if err != nil {
			panic(err)
		}
		return reg
	}
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				retErr = e
				return
			}
			panic(p)
		}
	}()

	switch {
	case mnem == "nop" && len(ops) == 0:
		b.Nop()
	case mnem == "ret" && len(ops) == 0:
		b.Ret()
	case mnem == "ecall" && len(ops) == 0:
		b.Ecall()
	case mnem == "ebreak" && len(ops) == 0:
		b.Ebreak()
	case mnem == "li":
		if err := need(2); err != nil {
			return err
		}
		v, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		b.Li(r(0), v)
	case mnem == "la":
		if err := need(2); err != nil {
			return err
		}
		b.La(r(0), ops[1])
	case mnem == "mv":
		if err := need(2); err != nil {
			return err
		}
		b.Mv(r(0), r(1))
	case mnem == "j":
		if err := need(1); err != nil {
			return err
		}
		b.J(ops[0])
	case mnem == "jr":
		if err := need(1); err != nil {
			return err
		}
		b.Jr(r(0))
	case mnem == "call":
		if err := need(1); err != nil {
			return err
		}
		b.Call(ops[0])
	case mnem == "beqz":
		if err := need(2); err != nil {
			return err
		}
		b.Beq(r(0), riscv.Zero, ops[1])
	case mnem == "bnez":
		if err := need(2); err != nil {
			return err
		}
		b.Bne(r(0), riscv.Zero, ops[1])
	case mnem == "jalr":
		if err := need(2); err != nil {
			return err
		}
		off, base, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		b.I(riscv.Inst{Op: riscv.JALR, Rd: r(0), Rs1: base, Imm: off})
	case rOps[mnem] != 0:
		if err := need(3); err != nil {
			return err
		}
		b.Op(rOps[mnem], r(0), r(1), r(2))
	case iOps[mnem] != 0:
		if err := need(3); err != nil {
			return err
		}
		v, err := parseImm(ops[2])
		if err != nil {
			return err
		}
		b.Imm(iOps[mnem], r(0), r(1), v)
	case loadOps[mnem] != 0:
		if err := need(2); err != nil {
			return err
		}
		off, base, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		b.Load(loadOps[mnem], r(0), base, off)
	case storeOps[mnem] != 0:
		if err := need(2); err != nil {
			return err
		}
		off, base, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		b.Store(storeOps[mnem], r(0), base, off)
	case branchOps[mnem] != 0:
		if err := need(3); err != nil {
			return err
		}
		b.Branch(branchOps[mnem], r(0), r(1), ops[2])
	case cvtOps[mnem] != 0:
		if err := need(2); err != nil {
			return err
		}
		b.I(riscv.Inst{Op: cvtOps[mnem], Rd: r(0), Rs1: r(1)})
	case mnem == "fmadd.d" || mnem == "fmadd.s":
		if err := need(4); err != nil {
			return err
		}
		op := riscv.FMADDD
		if mnem == "fmadd.s" {
			op = riscv.FMADDS
		}
		b.I(riscv.Inst{Op: op, Rd: r(0), Rs1: r(1), Rs2: r(2), Rs3: r(3)})
	case mnem == "vsetvli":
		// vsetvli rd, rs1, e{32,64}
		if err := need(3); err != nil {
			return err
		}
		var sew riscv.SEW
		switch strings.ToLower(ops[2]) {
		case "e32", "e32,m1":
			sew = riscv.E32
		case "e64", "e64,m1":
			sew = riscv.E64
		default:
			return fmt.Errorf("unsupported vtype %q", ops[2])
		}
		b.I(riscv.Inst{Op: riscv.VSETVLI, Rd: r(0), Rs1: r(1), Imm: riscv.VType(sew)})
	case mnem == "vle32.v" || mnem == "vle64.v" || mnem == "vse32.v" || mnem == "vse64.v":
		if err := need(2); err != nil {
			return err
		}
		off, base, err := parseMem(ops[1])
		if err != nil || off != 0 {
			return fmt.Errorf("vector memory ops take (rs1) with no offset")
		}
		op := map[string]riscv.Op{
			"vle32.v": riscv.VLE32V, "vle64.v": riscv.VLE64V,
			"vse32.v": riscv.VSE32V, "vse64.v": riscv.VSE64V,
		}[mnem]
		b.I(riscv.Inst{Op: op, Rd: r(0), Rs1: base})
	case vArith[mnem] != 0:
		if err := need(3); err != nil {
			return err
		}
		// vop vd, vs2, vs1 (standard RVV operand order)
		b.I(riscv.Inst{Op: vArith[mnem], Rd: r(0), Rs2: r(1), Rs1: r(2)})
	case mnem == "vmv.v.i":
		if err := need(2); err != nil {
			return err
		}
		v, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		b.I(riscv.Inst{Op: riscv.VMVVI, Rd: r(0), Imm: v})
	case mnem == "vfmacc.vf":
		if err := need(3); err != nil {
			return err
		}
		// vfmacc.vf vd, rs1(f), vs2
		b.I(riscv.Inst{Op: riscv.VFMACCVF, Rd: r(0), Rs1: r(1), Rs2: r(2)})
	case mnem == "vfmv.f.s":
		if err := need(2); err != nil {
			return err
		}
		b.I(riscv.Inst{Op: riscv.VFMVFS, Rd: r(0), Rs2: r(1)})
	case mnem == "vfmv.v.f":
		if err := need(2); err != nil {
			return err
		}
		b.I(riscv.Inst{Op: riscv.VFMVVF, Rd: r(0), Rs1: r(1)})
	default:
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	return retErr
}
