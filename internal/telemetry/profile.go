package telemetry

// Guest-level profiler for the emulator's basic-block engine: an optional
// per-block cycle/instret accumulator the block dispatcher feeds (one map
// update per dispatch when enabled, one nil check when not), which ranks
// hot blocks, symbolizes them against an image's function symbols, and
// emits both a top-N table and folded-stack flamegraph lines.

import (
	"fmt"
	"io"
	"sort"
)

// BlockSample accumulates one basic block's execution totals.
type BlockSample struct {
	PC         uint64 `json:"pc"`
	Cycles     uint64 `json:"cycles"`
	Instret    uint64 `json:"instret"`
	Dispatches uint64 `json:"dispatches"`
}

// GuestProfiler accumulates per-block samples for one hart. It is not
// goroutine-safe: each hart owns its profiler, and cross-run aggregation
// happens via Merge under the aggregator's lock.
type GuestProfiler struct {
	blocks map[uint64]*BlockSample
}

// NewGuestProfiler returns an empty profiler.
func NewGuestProfiler() *GuestProfiler {
	return &GuestProfiler{blocks: make(map[uint64]*BlockSample)}
}

// Sample records one block dispatch: instret instructions retired and
// cycles charged for the dispatch starting at pc.
func (p *GuestProfiler) Sample(pc, instret, cycles uint64) {
	s := p.blocks[pc]
	if s == nil {
		s = &BlockSample{PC: pc}
		p.blocks[pc] = s
	}
	s.Instret += instret
	s.Cycles += cycles
	s.Dispatches++
}

// Merge folds o's samples into p.
func (p *GuestProfiler) Merge(o *GuestProfiler) {
	if o == nil {
		return
	}
	for pc, os := range o.blocks {
		s := p.blocks[pc]
		if s == nil {
			s = &BlockSample{PC: pc}
			p.blocks[pc] = s
		}
		s.Cycles += os.Cycles
		s.Instret += os.Instret
		s.Dispatches += os.Dispatches
	}
}

// Totals sums cycles and instret over all blocks.
func (p *GuestProfiler) Totals() (cycles, instret uint64) {
	for _, s := range p.blocks {
		cycles += s.Cycles
		instret += s.Instret
	}
	return cycles, instret
}

// Blocks returns the number of distinct blocks sampled.
func (p *GuestProfiler) Blocks() int { return len(p.blocks) }

// Top returns up to n samples ranked by cycles (descending), ties broken
// by pc so the ranking is deterministic.
func (p *GuestProfiler) Top(n int) []BlockSample {
	out := make([]BlockSample, 0, len(p.blocks))
	for _, s := range p.blocks {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// --- Symbolization -------------------------------------------------------

// Sym is one function symbol for the profiler's symbolizer. The telemetry
// package stays dependency-free, so callers convert their symbol tables
// (e.g. obj.Image.FuncSymbols) into this shape.
type Sym struct {
	Name string
	Addr uint64
	Size uint64
}

// SymTable resolves guest addresses to function-relative names.
type SymTable struct {
	syms []Sym // sorted by Addr
}

// NewSymTable builds a table from function symbols (any order).
func NewSymTable(syms []Sym) *SymTable {
	t := &SymTable{syms: append([]Sym(nil), syms...)}
	sort.Slice(t.syms, func(i, j int) bool { return t.syms[i].Addr < t.syms[j].Addr })
	return t
}

// Resolve maps pc to the containing symbol and offset. A symbol with Size 0
// extends to the next symbol's start (or unbounded for the last one).
func (t *SymTable) Resolve(pc uint64) (name string, off uint64, ok bool) {
	if t == nil || len(t.syms) == 0 {
		return "", 0, false
	}
	i := sort.Search(len(t.syms), func(i int) bool { return t.syms[i].Addr > pc })
	if i == 0 {
		return "", 0, false
	}
	s := t.syms[i-1]
	if s.Size > 0 && pc >= s.Addr+s.Size {
		return "", 0, false
	}
	if s.Size == 0 && i < len(t.syms) && pc >= t.syms[i].Addr {
		return "", 0, false
	}
	return s.Name, pc - s.Addr, true
}

// Location renders pc as "sym+0xoff" (or "0xpc" when unresolvable).
func (t *SymTable) Location(pc uint64) string {
	if name, off, ok := t.Resolve(pc); ok {
		if off == 0 {
			return name
		}
		return fmt.Sprintf("%s+%#x", name, off)
	}
	return fmt.Sprintf("%#x", pc)
}

// --- Reports -------------------------------------------------------------

// HotBlock is one symbolized entry of the profile report.
type HotBlock struct {
	Rank       int     `json:"rank"`
	PC         uint64  `json:"pc"`
	Location   string  `json:"location"` // sym+0xoff
	Cycles     uint64  `json:"cycles"`
	CyclePct   float64 `json:"cycle_pct"`
	Instret    uint64  `json:"instret"`
	Dispatches uint64  `json:"dispatches"`
}

// Report symbolizes the top-n blocks against st (which may be nil).
func (p *GuestProfiler) Report(st *SymTable, n int) []HotBlock {
	total, _ := p.Totals()
	top := p.Top(n)
	out := make([]HotBlock, len(top))
	for i, s := range top {
		hb := HotBlock{
			Rank: i + 1, PC: s.PC, Location: st.Location(s.PC),
			Cycles: s.Cycles, Instret: s.Instret, Dispatches: s.Dispatches,
		}
		if total > 0 {
			hb.CyclePct = 100 * float64(s.Cycles) / float64(total)
		}
		out[i] = hb
	}
	return out
}

// WriteTable renders the top-n report as an aligned text table.
func (p *GuestProfiler) WriteTable(w io.Writer, st *SymTable, n int) {
	fmt.Fprintf(w, "%4s  %-12s  %-28s  %12s  %6s  %12s  %10s\n",
		"rank", "pc", "location", "cycles", "cyc%", "instret", "dispatches")
	for _, hb := range p.Report(st, n) {
		fmt.Fprintf(w, "%4d  %#-12x  %-28s  %12d  %5.1f%%  %12d  %10d\n",
			hb.Rank, hb.PC, hb.Location, hb.Cycles, hb.CyclePct, hb.Instret, hb.Dispatches)
	}
}

// FoldedStacks emits one flamegraph-folded line per block —
// "root;location cycles" — sorted by location for deterministic output.
// Feed the result to any flamegraph renderer (e.g. flamegraph.pl).
func (p *GuestProfiler) FoldedStacks(w io.Writer, root string, st *SymTable) {
	lines := make([]string, 0, len(p.blocks))
	for _, s := range p.blocks {
		lines = append(lines, fmt.Sprintf("%s;%s %d", root, st.Location(s.PC), s.Cycles))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}
