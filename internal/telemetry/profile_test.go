package telemetry

import (
	"strings"
	"testing"
)

func TestGuestProfilerTopAndTotals(t *testing.T) {
	p := NewGuestProfiler()
	// Hot block at 0x100: 10 dispatches of 8 instructions, 2 cycles each.
	for i := 0; i < 10; i++ {
		p.Sample(0x100, 8, 16)
	}
	p.Sample(0x200, 4, 4)
	p.Sample(0x300, 2, 2)

	if p.Blocks() != 3 {
		t.Fatalf("blocks = %d, want 3", p.Blocks())
	}
	cycles, instret := p.Totals()
	if cycles != 166 || instret != 86 {
		t.Errorf("totals = (%d, %d), want (166, 86)", cycles, instret)
	}
	top := p.Top(2)
	if len(top) != 2 || top[0].PC != 0x100 || top[1].PC != 0x200 {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Cycles != 160 || top[0].Instret != 80 || top[0].Dispatches != 10 {
		t.Errorf("hot block = %+v", top[0])
	}
	// Ties break by pc ascending.
	q := NewGuestProfiler()
	q.Sample(0x20, 1, 5)
	q.Sample(0x10, 1, 5)
	if tt := q.Top(0); tt[0].PC != 0x10 || tt[1].PC != 0x20 {
		t.Errorf("tie order = %+v", tt)
	}
}

func TestGuestProfilerMerge(t *testing.T) {
	a := NewGuestProfiler()
	a.Sample(0x100, 2, 4)
	b := NewGuestProfiler()
	b.Sample(0x100, 3, 6)
	b.Sample(0x200, 1, 1)
	a.Merge(b)
	a.Merge(nil)
	cycles, instret := a.Totals()
	if cycles != 11 || instret != 6 {
		t.Errorf("merged totals = (%d, %d), want (11, 6)", cycles, instret)
	}
	if a.Blocks() != 2 {
		t.Errorf("merged blocks = %d, want 2", a.Blocks())
	}
	if hot := a.Top(1)[0]; hot.PC != 0x100 || hot.Dispatches != 2 {
		t.Errorf("merged hot = %+v", hot)
	}
}

func TestSymTableResolve(t *testing.T) {
	st := NewSymTable([]Sym{
		{Name: "main", Addr: 0x1000, Size: 0x100},
		{Name: "helper", Addr: 0x2000}, // size 0: extends to next
		{Name: "tail", Addr: 0x3000},   // size 0, last: unbounded
	})
	cases := []struct {
		pc   uint64
		want string
	}{
		{0x1000, "main"},
		{0x1040, "main+0x40"},
		{0x10ff, "main+0xff"},
		{0x1100, "0x1100"}, // past main's size, before helper
		{0x2000, "helper"},
		{0x2fff, "helper+0xfff"},
		{0x3000, "tail"},
		{0x9999, "tail+0x6999"},
		{0x10, "0x10"}, // before all symbols
	}
	for _, c := range cases {
		if got := st.Location(c.pc); got != c.want {
			t.Errorf("Location(%#x) = %q, want %q", c.pc, got, c.want)
		}
	}
	var nilTable *SymTable
	if got := nilTable.Location(0x42); got != "0x42" {
		t.Errorf("nil table Location = %q", got)
	}
}

func TestReportAndFoldedStacks(t *testing.T) {
	p := NewGuestProfiler()
	p.Sample(0x1010, 8, 75)
	p.Sample(0x1000, 2, 25)
	st := NewSymTable([]Sym{{Name: "main", Addr: 0x1000}})

	rep := p.Report(st, 10)
	if len(rep) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep[0].Rank != 1 || rep[0].Location != "main+0x10" || rep[0].CyclePct != 75 {
		t.Errorf("rep[0] = %+v", rep[0])
	}
	if rep[1].Rank != 2 || rep[1].Location != "main" || rep[1].CyclePct != 25 {
		t.Errorf("rep[1] = %+v", rep[1])
	}

	var tbl strings.Builder
	p.WriteTable(&tbl, st, 10)
	out := tbl.String()
	if !strings.Contains(out, "main+0x10") || !strings.Contains(out, "75.0%") {
		t.Errorf("table output:\n%s", out)
	}

	var folded strings.Builder
	p.FoldedStacks(&folded, "matmul", st)
	want := "matmul;main 25\nmatmul;main+0x10 75\n"
	if folded.String() != want {
		t.Errorf("folded = %q, want %q", folded.String(), want)
	}
}
