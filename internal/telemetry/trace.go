package telemetry

// Request tracing: a lightweight span API that records the full lifecycle
// of one request — enqueue, worker pickup, each rewrite attempt, retries,
// breaker decisions, fallback — so a degraded response can be explained
// after the fact. Finished traces are retained in a fixed-capacity ring
// buffer and exported as JSON (the service's /trace/{id} endpoint).
//
// Every method is nil-safe: a nil *Trace or *Span records nothing, so call
// sites instrument unconditionally and untraced paths cost one branch.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer mints traces and retains the most recent finished ones.
type Tracer struct {
	epoch int64 // process-start nanos, part of every ID
	seq   atomic.Uint64

	mu   sync.Mutex
	cap  int
	ring []*Trace // oldest-first window of finished traces
	byID map[string]*Trace
}

// NewTracer returns a tracer retaining up to capacity finished traces
// (default 256 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		epoch: time.Now().UnixNano(),
		cap:   capacity,
		byID:  make(map[string]*Trace, capacity),
	}
}

// Start begins a new trace. The ID is unique within the process and stable
// enough across restarts (epoch-prefixed) for log correlation.
func (t *Tracer) Start(name string) *Trace {
	if t == nil {
		return nil
	}
	n := t.seq.Add(1)
	return &Trace{
		tracer: t,
		ID:     fmt.Sprintf("%x-%06x", uint64(t.epoch)&0xFFFF_FFFF, n),
		Name:   name,
		start:  time.Now(),
	}
}

// Get returns a finished trace by ID.
func (t *Tracer) Get(id string) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.byID[id]
	return tr, ok
}

// Len reports how many finished traces are retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// retain inserts a finished trace, evicting the oldest past capacity.
func (t *Tracer) retain(tr *Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) >= t.cap {
		evicted := t.ring[0]
		t.ring = t.ring[1:]
		delete(t.byID, evicted.ID)
	}
	t.ring = append(t.ring, tr)
	t.byID[tr.ID] = tr
}

// Trace is one request's recorded lifecycle. Spans may be added from any
// goroutine until Finish.
type Trace struct {
	tracer *Tracer
	ID     string
	Name   string
	start  time.Time

	mu       sync.Mutex
	spans    []*Span
	attrs    []kv
	finished bool
	end      time.Time
}

type kv struct {
	K string
	V string
}

// Span is one timed stage within a trace.
type Span struct {
	tr    *Trace
	name  string
	start time.Time

	mu    sync.Mutex
	end   time.Time
	attrs []kv
	done  bool
}

// Span starts a named span. Nil-safe.
func (t *Trace) Span(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, name: name, start: time.Now()}
	t.mu.Lock()
	if !t.finished {
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
	return sp
}

// Annotate attaches a key/value pair to the trace itself.
func (t *Trace) Annotate(k, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, kv{k, v})
	t.mu.Unlock()
}

// Finish closes the trace and retains it in the tracer's ring buffer.
// Unclosed spans are ended at the finish time. Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.end = now
	spans := t.spans
	t.mu.Unlock()
	for _, sp := range spans {
		sp.endAt(now, false)
	}
	if t.tracer != nil {
		t.tracer.retain(t)
	}
}

// Annotate attaches a key/value pair to the span.
func (sp *Span) Annotate(k, v string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.attrs = append(sp.attrs, kv{k, v})
	sp.mu.Unlock()
}

// End closes the span now. Idempotent; nil-safe.
func (sp *Span) End() { sp.endAt(time.Now(), true) }

func (sp *Span) endAt(now time.Time, explicit bool) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if !sp.done {
		sp.done = true
		sp.end = now
	} else if explicit {
		// Explicit End after an implicit Finish-close: keep the first end.
	}
	sp.mu.Unlock()
}

// Duration returns the span's elapsed time (0 while still open or nil).
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if !sp.done {
		return 0
	}
	return sp.end.Sub(sp.start)
}

// --- JSON export ---------------------------------------------------------

// SpanJSON is the wire form of one span.
type SpanJSON struct {
	Name       string            `json:"name"`
	StartUS    int64             `json:"start_us"` // offset from trace start
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceJSON is the wire form of one finished trace.
type TraceJSON struct {
	ID         string            `json:"id"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Spans      []SpanJSON        `json:"spans"`
}

// Export snapshots the trace for JSON serialization.
func (t *Trace) Export() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	t.mu.Lock()
	out := TraceJSON{
		ID:    t.ID,
		Name:  t.Name,
		Start: t.start,
		Attrs: attrMap(t.attrs),
	}
	if t.finished {
		out.DurationUS = t.end.Sub(t.start).Microseconds()
	}
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out.Spans = make([]SpanJSON, 0, len(spans))
	for _, sp := range spans {
		sp.mu.Lock()
		sj := SpanJSON{
			Name:    sp.name,
			StartUS: sp.start.Sub(t.start).Microseconds(),
			Attrs:   attrMap(sp.attrs),
		}
		if sp.done {
			sj.DurationUS = sp.end.Sub(sp.start).Microseconds()
		}
		sp.mu.Unlock()
		out.Spans = append(out.Spans, sj)
	}
	return out
}

// MarshalJSON renders the trace via Export.
func (t *Trace) MarshalJSON() ([]byte, error) { return json.Marshal(t.Export()) }

func attrMap(attrs []kv) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.K] = a.V
	}
	return m
}

// --- Context plumbing ----------------------------------------------------

type traceKey struct{}

// ContextWithTrace attaches tr to ctx (no-op on nil trace).
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}
