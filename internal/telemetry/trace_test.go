package telemetry

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestTracerRingEviction fills a capacity-3 tracer with 5 finished traces
// and checks the oldest two were evicted from both ring and index.
func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	ids := make([]string, 5)
	for i := range ids {
		x := tr.Start("req")
		x.Finish()
		ids[i] = x.ID
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	for _, id := range ids[:2] {
		if _, ok := tr.Get(id); ok {
			t.Errorf("trace %s should have been evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := tr.Get(id); !ok {
			t.Errorf("trace %s should be retained", id)
		}
	}
}

func TestTraceSpansAndExport(t *testing.T) {
	tr := NewTracer(0)
	x := tr.Start("rewrite")
	x.Annotate("config", "rv64gc")
	sp := x.Span("cache_lookup")
	sp.Annotate("hit", "false")
	time.Sleep(time.Millisecond)
	sp.End()
	open := x.Span("queue_wait") // left open: Finish must close it
	x.Finish()
	x.Finish() // idempotent

	if open.Duration() <= 0 {
		t.Error("open span should be closed by Finish")
	}
	ex := x.Export()
	if ex.ID != x.ID || ex.Name != "rewrite" {
		t.Errorf("export header = %+v", ex)
	}
	if ex.Attrs["config"] != "rv64gc" {
		t.Errorf("trace attrs = %v", ex.Attrs)
	}
	if len(ex.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(ex.Spans))
	}
	if ex.Spans[0].Name != "cache_lookup" || ex.Spans[0].Attrs["hit"] != "false" {
		t.Errorf("span[0] = %+v", ex.Spans[0])
	}
	if ex.Spans[0].DurationUS < 1000 {
		t.Errorf("span[0] duration_us = %d, want >= 1000", ex.Spans[0].DurationUS)
	}
	if ex.DurationUS < ex.Spans[0].DurationUS {
		t.Errorf("trace duration %d < span duration %d", ex.DurationUS, ex.Spans[0].DurationUS)
	}
	b, err := json.Marshal(x)
	if err != nil {
		t.Fatal(err)
	}
	var round TraceJSON
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatal(err)
	}
	if round.ID != x.ID || len(round.Spans) != 2 {
		t.Errorf("round trip = %+v", round)
	}
}

// TestNilSafety: all tracing calls on nil receivers must be no-ops, since
// call sites instrument unconditionally.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	x := tr.Start("noop")
	if x != nil {
		t.Fatal("nil tracer should mint nil traces")
	}
	x.Annotate("k", "v")
	sp := x.Span("stage")
	sp.Annotate("k", "v")
	sp.End()
	if sp.Duration() != 0 {
		t.Error("nil span duration should be 0")
	}
	x.Finish()
	if _, ok := tr.Get("anything"); ok {
		t.Error("nil tracer Get should miss")
	}
	if tr.Len() != 0 {
		t.Error("nil tracer Len should be 0")
	}
	if ex := x.Export(); ex.ID != "" {
		t.Error("nil trace export should be zero")
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil {
		t.Fatal("empty context should carry no trace")
	}
	if got := ContextWithTrace(ctx, nil); got != ctx {
		t.Error("attaching nil trace should return ctx unchanged")
	}
	tr := NewTracer(0)
	x := tr.Start("run")
	ctx2 := ContextWithTrace(ctx, x)
	if TraceFrom(ctx2) != x {
		t.Error("trace not recovered from context")
	}
}

func TestTraceIDsUnique(t *testing.T) {
	tr := NewTracer(10)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		x := tr.Start("r")
		if seen[x.ID] {
			t.Fatalf("duplicate trace id %s", x.ID)
		}
		seen[x.ID] = true
		x.Finish()
	}
}
