package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers every instrument type from many
// goroutines (run under -race by scripts/check.sh) and checks the totals.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("chimera_test_ops_total", "concurrent increments")
	vec := r.CounterVec("chimera_test_labeled_total", "labeled increments", "worker")
	g := r.Gauge("chimera_test_inflight", "concurrent gauge")
	h := r.Histogram("chimera_test_seconds", "concurrent histogram", DurationBuckets())

	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		child := vec.With("w") // shared child: contended on purpose
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				child.Add(2)
				g.Add(1)
				g.Add(-1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := vec.With("w").Value(); got != 2*workers*perWorker {
		t.Errorf("labeled counter = %d, want %d", got, 2*workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	if s.Max != 0.001 {
		t.Errorf("histogram max = %v, want 0.001", s.Max)
	}
}

// TestHotPathAllocs asserts the counter and histogram hot paths allocate
// nothing — the condition for wiring them into the emulator and the
// service request path.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("chimera_test_allocs_total", "alloc-free counter")
	g := r.Gauge("chimera_test_allocs_gauge", "alloc-free gauge")
	h := r.Histogram("chimera_test_allocs_seconds", "alloc-free histogram", DurationBuckets())
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Add(1)
		h.Observe(0.00042)
	}); n != 0 {
		t.Errorf("hot path allocates %v times per run, want 0", n)
	}
	// Nil instruments (telemetry off) must also be free.
	var nc *Counter
	var nh *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		nc.Inc()
		nh.Observe(1)
	}); n != 0 {
		t.Errorf("nil hot path allocates %v times per run, want 0", n)
	}
}

// TestPrometheusExposition is the golden test for the text format.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("chimera_requests_total", "requests served")
	c.Add(42)
	vec := r.CounterVec("chimera_errors_total", "errors by endpoint", "endpoint")
	vec.With("run").Add(2)
	vec.With("rewrite").Inc()
	g := r.Gauge("chimera_queue_depth", "jobs queued")
	g.Set(3)
	r.GaugeFunc("chimera_uptime_seconds", "process uptime", func() float64 { return 1.5 })
	h := r.Histogram("chimera_latency_seconds", "request latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	want := `# HELP chimera_errors_total errors by endpoint
# TYPE chimera_errors_total counter
chimera_errors_total{endpoint="rewrite"} 1
chimera_errors_total{endpoint="run"} 2
# HELP chimera_latency_seconds request latency
# TYPE chimera_latency_seconds histogram
chimera_latency_seconds_bucket{le="0.001"} 1
chimera_latency_seconds_bucket{le="0.01"} 1
chimera_latency_seconds_bucket{le="0.1"} 2
chimera_latency_seconds_bucket{le="+Inf"} 3
chimera_latency_seconds_sum 2.0505
chimera_latency_seconds_count 3
# HELP chimera_queue_depth jobs queued
# TYPE chimera_queue_depth gauge
chimera_queue_depth 3
# HELP chimera_requests_total requests served
# TYPE chimera_requests_total counter
chimera_requests_total 42
# HELP chimera_uptime_seconds process uptime
# TYPE chimera_uptime_seconds gauge
chimera_uptime_seconds 1.5
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestMetricNameValidation covers the naming law the metrics-lint step in
// scripts/check.sh relies on.
func TestMetricNameValidation(t *testing.T) {
	valid := []string{"chimera_requests_total", "chimera_a", "chimera_queue_depth"}
	invalid := []string{"requests_total", "chimera_Requests", "chimera_req-total",
		"chimera_req2_total", "chimera", "Chimera_requests"}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad name", func() { NewRegistry().Counter("bad_name", "help") })
	mustPanic("empty help", func() { NewRegistry().Counter("chimera_ok_total", "  ") })
	mustPanic("duplicate", func() {
		r := NewRegistry()
		r.Counter("chimera_dup_total", "first")
		r.Counter("chimera_dup_total", "second")
	})
}

// TestHistogramQuantile checks the upper-bound quantile estimate used by
// the service's /stats latency summaries.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("chimera_q_seconds", "quantile test", []float64{1, 2, 4, 8})
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // bucket le=1
	}
	for i := 0; i < 10; i++ {
		h.Observe(5) // bucket le=8
	}
	h.Observe(100) // +Inf bucket; also the max
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := s.Quantile(0.95); got != 8 {
		t.Errorf("p95 = %v, want 8", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("p100 = %v, want 100 (observed max)", got)
	}
	if zero := (HistSnapshot{}); zero.Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile should be 0")
	}
}

// TestFamilies covers the lint-facing introspection API.
func TestFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("chimera_b_total", "second")
	r.CounterVec("chimera_a_total", "first", "x", "y")
	fams := r.Families()
	if len(fams) != 2 || fams[0].Name != "chimera_a_total" || fams[1].Name != "chimera_b_total" {
		t.Fatalf("families = %+v", fams)
	}
	if fams[0].Kind != "counter" || len(fams[0].Labels) != 2 {
		t.Errorf("family info = %+v", fams[0])
	}
	for _, f := range fams {
		if !ValidName(f.Name) || strings.TrimSpace(f.Help) == "" {
			t.Errorf("family %q fails lint", f.Name)
		}
	}
}
