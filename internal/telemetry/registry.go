// Package telemetry is Chimera's dependency-free observability subsystem:
// a metrics registry (atomic counters, gauges, and fixed-bucket histograms
// with label support and a zero-allocation hot path) exposed in Prometheus
// text format, a lightweight request tracer with ring-buffer retention
// (trace.go), and a guest-level profiler for the emulator (profile.go).
//
// The package deliberately imports nothing from the repository, so every
// layer — service, kernel, emulator, commands — can publish into it without
// dependency cycles. All hot-path instruments (Counter, Gauge, Histogram)
// are nil-safe: a nil instrument records nothing and costs one branch,
// which is the "telemetry off" mode for optional call sites.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// nameRE is the registry's naming law: every metric is chimera-prefixed,
// lower-case, and underscore-separated. scripts/check.sh asserts it via
// the metrics-lint unit tests.
var nameRE = regexp.MustCompile(`^chimera_[a-z_]+$`)

// ValidName reports whether name satisfies the metric naming law.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// familyKind distinguishes exposition TYPE lines.
type familyKind uint8

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration (Counter, Gauge, ...) panics on an
// invalid or duplicate name or empty help text — metrics are wired at
// construction time, so a bad name is a programming error, not a runtime
// condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric family: its children are the per-label-value
// instruments. Label-less instruments are the single child with key "".
type family struct {
	name   string
	help   string
	kind   familyKind
	labels []string

	mu       sync.Mutex
	children map[string]child
	order    []string // child keys in insertion order (sorted at exposition)

	buckets []float64 // histogram upper bounds (without +Inf)
}

type child interface {
	write(w io.Writer, fam *family, labelKey string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates (or fails on) a family.
func (r *Registry) register(name, help string, kind familyKind, labels []string, buckets []float64) *family {
	if !ValidName(name) {
		panic(fmt.Sprintf("telemetry: metric name %q violates %s", name, nameRE))
	}
	if strings.TrimSpace(help) == "" {
		panic(fmt.Sprintf("telemetry: metric %q has no help text", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", name))
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		children: make(map[string]child),
		buckets:  buckets,
	}
	r.families[name] = f
	return f
}

// child returns the instrument for the given label values, creating it via
// mk on first use. Label cardinality is enforced here.
func (f *family) child(values []string, mk func() child) child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := mk()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// --- Counter -------------------------------------------------------------

// Counter is a monotonically increasing uint64. The zero value is usable;
// a nil Counter records nothing.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) write(w io.Writer, fam *family, labelKey string) {
	fmt.Fprintf(w, "%s%s %d\n", fam.name, labelKey, c.v.Load())
}

// Counter registers a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return f.child(nil, func() child { return &Counter{} }).(*Counter)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// With returns the child counter for the label values, creating it on first
// use. Hot paths should call With once and keep the returned *Counter.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() child { return &Counter{} }).(*Counter)
}

// Each calls fn for every existing child with its label values.
func (v *CounterVec) Each(fn func(values []string, c *Counter)) {
	v.f.mu.Lock()
	keys := append([]string(nil), v.f.order...)
	v.f.mu.Unlock()
	for _, k := range keys {
		v.f.mu.Lock()
		c := v.f.children[k]
		v.f.mu.Unlock()
		fn(splitKey(k), c.(*Counter))
	}
}

// --- Gauge ---------------------------------------------------------------

// Gauge is a float64 that can go up and down. A nil Gauge records nothing.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (possibly negative) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) write(w io.Writer, fam *family, labelKey string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, labelKey, formatFloat(g.Value()))
}

// Gauge registers a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return f.child(nil, func() child { return &Gauge{} }).(*Gauge)
}

// gaugeFunc samples a callback at exposition time (queue depths, cache
// bytes, uptime — state that already lives somewhere else).
type gaugeFunc struct{ fn func() float64 }

func (g gaugeFunc) write(w io.Writer, fam *family, labelKey string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, labelKey, formatFloat(g.fn()))
}

// GaugeFunc registers a gauge whose value is sampled from fn at scrape
// time. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.child(nil, func() child { return gaugeFunc{fn: fn} })
}

// --- Histogram -----------------------------------------------------------

// Histogram is a fixed-bucket histogram with atomic counts, sum, and max.
// Observe is allocation-free; a nil Histogram records nothing.
type Histogram struct {
	upper   []float64 // bucket upper bounds; implicit +Inf follows
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	maxBits atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, buckets: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value (allocation-free: hand-rolled binary search,
// CAS loops for the float sum and max).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v.
	lo, hi := 0, len(h.upper)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.upper[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nb) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	Upper  []float64 // bucket upper bounds (without +Inf)
	Counts []uint64  // len(Upper)+1; last is the +Inf bucket
	Count  uint64
	Sum    float64
	Max    float64
}

// Snapshot copies the histogram's counters. The per-bucket loads are not
// mutually atomic; totals may be ahead of buckets by in-flight updates.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Upper:  h.upper,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Max:    math.Float64frombits(h.maxBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper edge of the bucket holding the q-th observation, or the
// observed max for the +Inf bucket.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen > rank {
			if i < len(s.Upper) {
				return s.Upper[i]
			}
			return s.Max
		}
	}
	return s.Max
}

func (h *Histogram) write(w io.Writer, fam *family, labelKey string) {
	s := h.Snapshot()
	var cum uint64
	for i, upper := range s.Upper {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
			mergeLabel(labelKey, "le", formatFloat(upper)), cum)
	}
	cum += s.Counts[len(s.Counts)-1]
	fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, mergeLabel(labelKey, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, labelKey, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, labelKey, s.Count)
}

// Histogram registers a label-less histogram with the given bucket upper
// bounds (must be sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	checkBuckets(name, buckets)
	f := r.register(name, help, kindHistogram, nil, buckets)
	return f.child(nil, func() child { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers a histogram family with labels.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	checkBuckets(name, buckets)
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, buckets)}
}

// With returns the child histogram for the label values. Hot paths should
// call With once and keep the returned *Histogram.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() child { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Each calls fn for every existing child with its label values.
func (v *HistogramVec) Each(fn func(values []string, h *Histogram)) {
	v.f.mu.Lock()
	keys := append([]string(nil), v.f.order...)
	v.f.mu.Unlock()
	for _, k := range keys {
		v.f.mu.Lock()
		c := v.f.children[k]
		v.f.mu.Unlock()
		fn(splitKey(k), c.(*Histogram))
	}
}

func checkBuckets(name string, buckets []float64) {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q has no buckets", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
		}
	}
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets are the default latency bounds in seconds: powers of two
// from 1µs to ~16.8s (the same resolution the service's original /stats
// histograms used), +Inf implicit.
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 2, 25) }

// --- Exposition ----------------------------------------------------------

// FamilyInfo describes one registered family (for the metrics-lint tests).
type FamilyInfo struct {
	Name   string
	Help   string
	Kind   string
	Labels []string
}

// Families lists registered families sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilyInfo, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, FamilyInfo{
			Name: f.name, Help: f.help, Kind: f.kind.String(),
			Labels: append([]string(nil), f.labels...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WritePrometheus renders every family in Prometheus text exposition
// format, families and children sorted for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		children := make([]child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for i, c := range children {
			c.write(w, f, labelString(f.labels, splitKey(keys[i])))
		}
	}
}

// ServeHTTP makes the registry a /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w)
}

// labelString renders {k="v",...} or "" for label-less children.
func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, "%s=%q", n, v)
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabel appends one more label pair to an existing label string (for
// histogram le labels).
func mergeLabel(labelKey, name, value string) string {
	pair := fmt.Sprintf("%s=%q", name, value)
	if labelKey == "" {
		return "{" + pair + "}"
	}
	return labelKey[:len(labelKey)-1] + "," + pair + "}"
}

func splitKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, "\x00")
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders floats the way Prometheus clients expect: integers
// without a decimal point, everything else in shortest-round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
