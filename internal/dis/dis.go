// Package dis recursively disassembles executable images. It plays the role
// of IDA Pro in the paper's pipeline (§4.1): recursion from the entry point
// and function symbols guarantees every *recognized* instruction is real,
// but completeness is explicitly not guaranteed — code reachable only
// through indirect jumps may stay unrecognized, and Chimera's runtime
// rewrites such instructions when they fault at run time (§4.3).
package dis

import (
	"errors"
	"sort"

	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

// Insn is one recognized instruction.
type Insn struct {
	Addr uint64
	Inst riscv.Inst
}

// Result is the disassembly of an image.
type Result struct {
	// Insns maps address to the decoded instruction.
	Insns map[uint64]riscv.Inst
	// Order is the sorted list of recognized instruction addresses.
	Order []uint64
	// IndirectJumps lists the addresses of register-indirect jumps (jalr)
	// whose targets cannot be resolved statically.
	IndirectJumps []uint64
	// Calls lists the addresses of direct calls (jal/jalr with rd=ra).
	Calls []uint64
	// Undecodable maps addresses where decoding failed on a recursive path
	// to the error (reserved encodings, truncation).
	Undecodable map[uint64]error
	// Roots are the recursion roots: the entry point and every function
	// symbol. CFG recovery treats them as block leaders.
	Roots []uint64
}

// At returns the instruction at addr.
func (r *Result) At(addr uint64) (riscv.Inst, bool) {
	in, ok := r.Insns[addr]
	return in, ok
}

// Next returns the address of the recognized instruction following addr.
func (r *Result) Next(addr uint64) (uint64, bool) {
	in, ok := r.Insns[addr]
	if !ok {
		return 0, false
	}
	next := addr + uint64(in.Len)
	if _, ok := r.Insns[next]; ok {
		return next, true
	}
	return next, false
}

// Disassemble recursively disassembles the image starting from the entry
// point and every function symbol.
func Disassemble(img *obj.Image) *Result {
	return DisassembleWithRoots(img, nil)
}

// DisassembleWithRoots disassembles like Disassemble but seeds the
// recursion with extra roots on top of the entry point and function
// symbols. The resolver (internal/resolve) feeds statically recovered
// High-confidence indirect targets back through this entry point so code
// reachable only through jump tables is still recognized. Extra roots
// outside executable sections are ignored; duplicates are deduplicated.
func DisassembleWithRoots(img *obj.Image, extra []uint64) *Result {
	res := &Result{
		Insns:       make(map[uint64]riscv.Inst),
		Undecodable: make(map[uint64]error),
	}
	work := []uint64{img.Entry}
	for _, sym := range img.FuncSymbols() {
		work = append(work, sym.Addr)
	}
	seen := make(map[uint64]bool, len(work)+len(extra))
	for _, a := range work {
		seen[a] = true
	}
	for _, a := range extra {
		if seen[a] {
			continue
		}
		if sec := img.SectionAt(a); sec == nil || sec.Perm&obj.PermX == 0 {
			continue
		}
		seen[a] = true
		work = append(work, a)
	}
	res.Roots = append([]uint64(nil), work...)
	sort.Slice(res.Roots, func(i, j int) bool { return res.Roots[i] < res.Roots[j] })

	var buf [4]byte
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		for {
			if _, seen := res.Insns[pc]; seen {
				break
			}
			if _, bad := res.Undecodable[pc]; bad {
				break
			}
			sec := img.SectionAt(pc)
			if sec == nil || sec.Perm&obj.PermX == 0 {
				break
			}
			n := copy(buf[:], sec.Data[pc-sec.Addr:])
			inst, err := riscv.Decode(buf[:n])
			if err != nil {
				// Reserved/illegal encodings terminate the path; they are
				// recorded so rewriters can report coverage.
				if !errors.Is(err, riscv.ErrTruncated) {
					res.Undecodable[pc] = err
				}
				break
			}
			res.Insns[pc] = inst

			switch {
			case inst.Op == riscv.JAL:
				target := pc + uint64(inst.Imm)
				work = append(work, target)
				if inst.Rd == riscv.RA {
					res.Calls = append(res.Calls, pc)
					// A call returns: continue at the fallthrough.
					pc += uint64(inst.Len)
					continue
				}
				pc = target
				continue
			case inst.Op == riscv.JALR:
				if inst.Rd == riscv.RA {
					res.Calls = append(res.Calls, pc)
					// Indirect call; assume it returns.
					res.IndirectJumps = append(res.IndirectJumps, pc)
					pc += uint64(inst.Len)
					continue
				}
				// Indirect jump (including ret): path ends here.
				res.IndirectJumps = append(res.IndirectJumps, pc)
			case inst.IsBranch():
				work = append(work, pc+uint64(inst.Imm))
				pc += uint64(inst.Len)
				continue
			case inst.Op == riscv.ECALL, inst.Op == riscv.EBREAK:
				// Environment calls return; ebreak may too (debugger).
				pc += uint64(inst.Len)
				continue
			default:
				pc += uint64(inst.Len)
				continue
			}
			break
		}
	}

	res.Order = make([]uint64, 0, len(res.Insns))
	for a := range res.Insns {
		res.Order = append(res.Order, a)
	}
	sort.Slice(res.Order, func(i, j int) bool { return res.Order[i] < res.Order[j] })
	sort.Slice(res.IndirectJumps, func(i, j int) bool { return res.IndirectJumps[i] < res.IndirectJumps[j] })
	sort.Slice(res.Calls, func(i, j int) bool { return res.Calls[i] < res.Calls[j] })
	return res
}

// Coverage returns the fraction of executable bytes covered by recognized
// instructions.
func (r *Result) Coverage(img *obj.Image) float64 {
	covered := 0
	for _, in := range r.Insns {
		covered += in.Len
	}
	total := img.CodeSize()
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}
