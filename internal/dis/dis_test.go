package dis

import (
	"testing"

	"github.com/eurosys26p57/chimera/internal/asm"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

func buildLoop(t *testing.T, compress bool) (*Result, uint64) {
	t.Helper()
	b := asm.NewBuilder(riscv.RV64GC)
	b.Compress = compress
	b.Func("main")
	b.Li(riscv.A0, 10)
	b.Li(riscv.A1, 0)
	b.Label("loop")
	b.Op(riscv.ADD, riscv.A1, riscv.A1, riscv.A0)
	b.Imm(riscv.ADDI, riscv.A0, riscv.A0, -1)
	b.Bne(riscv.A0, riscv.Zero, "loop")
	b.Call("leaf")
	b.Ecall()
	b.Func("leaf")
	b.Imm(riscv.ADDI, riscv.A0, riscv.A0, 1)
	b.Ret()
	img, err := b.Build("t", "main")
	if err != nil {
		t.Fatal(err)
	}
	return Disassemble(img), img.Entry
}

func TestDisassembleCoversReachableCode(t *testing.T) {
	for _, compress := range []bool{false, true} {
		res, entry := buildLoop(t, compress)
		if _, ok := res.At(entry); !ok {
			t.Fatal("entry not recognized")
		}
		if len(res.Insns) < 8 {
			t.Errorf("compress=%v: recognized only %d instructions", compress, len(res.Insns))
		}
		// Two indirect transfers: the auipc/jalr call pair and leaf's ret.
		if len(res.IndirectJumps) != 2 {
			t.Errorf("compress=%v: indirect jumps = %v", compress, res.IndirectJumps)
		}
		if len(res.Calls) != 1 {
			t.Errorf("compress=%v: calls = %v", compress, res.Calls)
		}
		// Addresses must be strictly increasing with no overlaps.
		for i := 1; i < len(res.Order); i++ {
			prev := res.Order[i-1]
			if prev+uint64(res.Insns[prev].Len) > res.Order[i] {
				t.Fatalf("overlapping instructions at %#x/%#x", prev, res.Order[i])
			}
		}
	}
}

func TestDisassembleStopsAtIndirectTargets(t *testing.T) {
	// Code reachable only through a register-indirect jump must stay
	// unrecognized — the incompleteness the paper's runtime handles (§4.1).
	b := asm.NewBuilder(riscv.RV64GC)
	b.Func("main")
	b.La(riscv.T0, "hidden")
	b.Jr(riscv.T0)
	b.Label("hidden")
	b.Li(riscv.A0, 99)
	b.Ecall()
	img, err := b.Build("t", "main")
	if err != nil {
		t.Fatal(err)
	}
	res := Disassemble(img)
	hidden, _ := img.Lookup("hidden")
	_ = hidden
	// "hidden" is a label, not a function symbol, so it is not a root.
	var sawEcall bool
	for _, in := range res.Insns {
		if in.Op == riscv.ECALL {
			sawEcall = true
		}
	}
	if sawEcall {
		t.Error("code behind an indirect jump was recognized; recursion should not reach it")
	}
	if res.Coverage(img) >= 1.0 {
		t.Error("coverage should be incomplete")
	}
}

func TestDisassembleRecordsUndecodable(t *testing.T) {
	b := asm.NewBuilder(riscv.RV64GC)
	b.Func("main")
	b.Nop()
	b.Raw(0x0000001F) // reserved wide prefix on the straight-line path
	img, err := b.Build("t", "main")
	if err != nil {
		t.Fatal(err)
	}
	res := Disassemble(img)
	if len(res.Undecodable) != 1 {
		t.Errorf("undecodable = %v", res.Undecodable)
	}
}

func TestNext(t *testing.T) {
	res, entry := buildLoop(t, false)
	next, ok := res.Next(entry)
	if !ok {
		t.Fatalf("Next(entry) not recognized")
	}
	if next != entry+4 {
		t.Errorf("next = %#x, want %#x", next, entry+4)
	}
	if _, ok := res.Next(0xdead); ok {
		t.Error("Next of unknown address succeeded")
	}
}
