package dis_test

import (
	"errors"
	"testing"

	"github.com/eurosys26p57/chimera/internal/asm"
	"github.com/eurosys26p57/chimera/internal/dis"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

// TestUndecodableCarriesEncoding checks that decode failures recorded in
// Result.Undecodable are typed IllegalInstErrors, so coverage reports and
// fuzz divergence dumps can print the raw bits at each unreachable address.
func TestUndecodableCarriesEncoding(t *testing.T) {
	const badWord = 0x0000002F
	b := asm.NewBuilder(riscv.RV64GC)
	b.Func("main")
	b.Nop()
	b.Raw(badWord)
	img, err := b.Build("undecodable", "main")
	if err != nil {
		t.Fatal(err)
	}
	res := dis.Disassemble(img)
	if len(res.Undecodable) == 0 {
		t.Fatal("no undecodable addresses recorded")
	}
	found := false
	for addr, derr := range res.Undecodable {
		var ie *riscv.IllegalInstError
		if !errors.As(derr, &ie) {
			t.Fatalf("Undecodable[%#x] = %v (%T), want *IllegalInstError", addr, derr, derr)
		}
		if ie.Raw == badWord && ie.Width == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no undecodable entry carries the planted encoding %#08x: %v", badWord, res.Undecodable)
	}
}
