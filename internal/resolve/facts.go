package resolve

import (
	"encoding/binary"
	"sort"

	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

// codePtr is a code-pointer-constant fact: a pointer-sized value at rest
// in a data section that looks like the address of an instruction.
type codePtr struct {
	Slot     uint64 // address of the slot holding the pointer
	Target   uint64
	Writable bool // slot lies in writable data
}

// scanCodePointers walks every readable non-executable section at
// pointer alignment and records values that name a decodable address in
// an executable section. These are weak facts — an arena of arbitrary
// integers can alias into the text range — so on their own they only
// ever produce Medium (read-only slot) or Low (writable slot)
// candidates for otherwise-unresolved sites.
func scanCodePointers(img *obj.Image) []codePtr {
	var out []codePtr
	for _, sec := range img.Sections {
		if sec.Perm&obj.PermX != 0 || sec.Perm&obj.PermR == 0 {
			continue
		}
		if sec.Name == obj.SecFaultTab || sec.Name == obj.SecVRegFile {
			continue
		}
		writable := sec.Perm&obj.PermW != 0
		data := sec.Data
		for off := 0; off+8 <= len(data); off += 8 {
			v := binary.LittleEndian.Uint64(data[off:])
			if !validCode(img, v) {
				continue
			}
			out = append(out, codePtr{Slot: sec.Addr + uint64(off), Target: v, Writable: writable})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}

// validCode reports whether addr plausibly starts an instruction: it is
// nonzero, 2-byte aligned, inside an executable section, and decodes.
func validCode(img *obj.Image, addr uint64) bool {
	if addr == 0 || addr&1 != 0 {
		return false
	}
	sec := img.SectionAt(addr)
	if sec == nil || sec.Perm&obj.PermX == 0 {
		return false
	}
	var buf [4]byte
	n := copy(buf[:], sec.Data[addr-sec.Addr:])
	_, err := riscv.Decode(buf[:n])
	return err == nil
}

// maxTableBytes caps how large a claimed jump table may be before the
// slice fact is rejected as implausible.
const maxTableBytes = 1 << 15

// readTable reads count entries of the given width starting at base and
// returns the raw values (lw entries sign-extend like the hardware
// would). It fails unless the whole extent lies inside one readable,
// non-executable section.
func readTable(img *obj.Image, base uint64, count, width int) ([]uint64, *obj.Section, bool) {
	if count <= 0 || count*width > maxTableBytes {
		return nil, nil, false
	}
	sec := img.SectionAt(base)
	if sec == nil || sec.Perm&obj.PermX != 0 || sec.Perm&obj.PermR == 0 {
		return nil, nil, false
	}
	end := base + uint64(count*width)
	if end > sec.End() {
		return nil, nil, false
	}
	out := make([]uint64, count)
	data := sec.Data[base-sec.Addr:]
	for i := 0; i < count; i++ {
		switch width {
		case 8:
			out[i] = binary.LittleEndian.Uint64(data[i*8:])
		case 4:
			out[i] = uint64(int64(int32(binary.LittleEndian.Uint32(data[i*4:]))))
		default:
			return nil, nil, false
		}
	}
	return out, sec, true
}

// anchorSet builds the symbol-anchor fact set: the recursion roots the
// base disassembly trusts (entry point + function symbols). A writable
// jump table whose every entry is an anchor still earns High confidence
// — the targets independently exist, so a guest overwrite can redirect
// control but not invent an address the rewriter has not covered.
func anchorSet(roots []uint64) map[uint64]bool {
	m := make(map[uint64]bool, len(roots))
	for _, r := range roots {
		m[r] = true
	}
	return m
}
