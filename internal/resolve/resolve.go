// Package resolve statically recovers indirect-jump targets from an
// image with tiered confidence, in the style of Datalog disassemblers
// (ddisasm): extract relational facts from code and data — address
// materializations, bound checks, shifted-index table slices, code
// pointers at rest in rodata/data, symbol anchors — then run rules over
// them to a fixpoint, feeding every High-confidence target back into the
// recursive disassembler as a new root until nothing new is learned.
//
// The output is a TargetSet: per-indirect-site candidate targets tagged
// High/Medium/Low, plus the recovered jump-table extents. Consumers:
//
//   - internal/cfg completes successor edges from High-confidence sites
//     (Block.ResolvedTargets);
//   - the CHBP/Safer/ARMore rewriters statically patch code reachable
//     only through resolved targets, keeping the trap fallback for the
//     rest;
//   - internal/kernel counts the runtime-rewrite faults the static
//     patches avoided.
//
// Confidence semantics (see DESIGN.md §11): a site is High (Exhaustive)
// only when the rule engine can argue the candidate set covers every
// dynamic target — a proven-bounds jump-table slice whose table is
// read-only or whose entries are all symbol anchors, or a direct
// constant materialization. Medium candidates are well-formed but not
// provably complete (signed bounds, writable unanchored tables, rodata
// code-pointer constants); Low candidates are plausible pointers found
// in writable data. Only High targets drive disassembly roots and
// static patching; the fuzz soundness oracle (internal/fuzz, resolve
// axis) asserts the High/Exhaustive claim dynamically.
package resolve

import (
	"fmt"
	"sort"

	"github.com/eurosys26p57/chimera/internal/dis"
	"github.com/eurosys26p57/chimera/internal/obj"
)

// Tier is the confidence tier of a recovered target.
type Tier uint8

// Confidence tiers, ordered so higher is more confident.
const (
	TierLow Tier = iota + 1
	TierMedium
	TierHigh
)

func (t Tier) String() string {
	switch t {
	case TierHigh:
		return "high"
	case TierMedium:
		return "medium"
	case TierLow:
		return "low"
	}
	return "none"
}

// Target is one candidate target of an indirect site.
type Target struct {
	Addr uint64
	Tier Tier
	// Rule names the derivation that produced the candidate, for
	// inspection (chimera-dis -resolve) and tests.
	Rule string
}

// Table is a recovered jump-table extent.
type Table struct {
	Base     uint64 // address of the first entry
	Stride   int    // bytes per entry (4 or 8)
	Count    int    // number of entries
	Section  string // section holding the table
	Writable bool   // table lies in writable data
}

// End returns the first address past the table.
func (t Table) End() uint64 { return t.Base + uint64(t.Count*t.Stride) }

// Site is one indirect-jump site (a jalr that is not a plain return).
type Site struct {
	Addr uint64
	Call bool // rd == ra (indirect call, falls through)
	// Exhaustive reports that Targets provably covers every address this
	// site can dynamically branch to. Only exhaustive sites are patched
	// statically; the fuzz oracle treats a dynamic target outside the
	// set of an exhaustive site as a soundness bug.
	Exhaustive bool
	Targets    []Target
	Table      *Table // backing jump table, when the site was sliced
}

// Tier returns the best tier among the site's candidates.
func (s *Site) Tier() Tier {
	best := Tier(0)
	for _, t := range s.Targets {
		if t.Tier > best {
			best = t.Tier
		}
	}
	return best
}

// HighTargets returns the sorted High-confidence targets of the site.
func (s *Site) HighTargets() []uint64 {
	var out []uint64
	for _, t := range s.Targets {
		if t.Tier == TierHigh {
			out = append(out, t.Addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TargetSet is the resolver's result for one image.
type TargetSet struct {
	// Sites maps the address of each indirect site to its candidates.
	Sites map[uint64]*Site
	// Tables lists recovered jump-table extents, sorted by base.
	Tables []Table
	// Dis is the completed disassembly of the final fixpoint iteration:
	// recursive descent seeded with every High-confidence target.
	Dis *dis.Result
	// Iters is the number of macro fixpoint iterations that ran.
	Iters int
	// FactCounts tallies the relational facts extracted on the final
	// iteration, keyed by fact name (materialization, bound, slice,
	// code-pointer, anchor).
	FactCounts map[string]int
}

// Site returns the site record at pc, or nil.
func (ts *TargetSet) Site(pc uint64) *Site { return ts.Sites[pc] }

// Roots returns the sorted, deduplicated set of High-confidence targets
// across all sites: the addresses recursive disassembly should treat as
// extra roots.
func (ts *TargetSet) Roots() []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for _, s := range ts.Sites {
		for _, t := range s.Targets {
			if t.Tier == TierHigh && !seen[t.Addr] {
				seen[t.Addr] = true
				out = append(out, t.Addr)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Summary aggregates a TargetSet for telemetry and reporting.
type Summary struct {
	Sites           int `json:"sites"`
	SitesHigh       int `json:"sites_high"`
	SitesMedium     int `json:"sites_medium"`
	SitesLow        int `json:"sites_low"`
	SitesUnresolved int `json:"sites_unresolved"`
	Targets         int `json:"targets"`
	TargetsHigh     int `json:"targets_high"`
	TargetsMedium   int `json:"targets_medium"`
	TargetsLow      int `json:"targets_low"`
	Tables          int `json:"tables"`
	TableEntries    int `json:"table_entries"`
	Iters           int `json:"iters"`
}

// Summary computes aggregate counts over the TargetSet.
func (ts *TargetSet) Summary() Summary {
	sum := Summary{Iters: ts.Iters}
	for _, s := range ts.Sites {
		sum.Sites++
		switch s.Tier() {
		case TierHigh:
			sum.SitesHigh++
		case TierMedium:
			sum.SitesMedium++
		case TierLow:
			sum.SitesLow++
		default:
			sum.SitesUnresolved++
		}
		for _, t := range s.Targets {
			sum.Targets++
			switch t.Tier {
			case TierHigh:
				sum.TargetsHigh++
			case TierMedium:
				sum.TargetsMedium++
			case TierLow:
				sum.TargetsLow++
			}
		}
	}
	sum.Tables = len(ts.Tables)
	for _, t := range ts.Tables {
		sum.TableEntries += t.Count
	}
	return sum
}

func (sum Summary) String() string {
	return fmt.Sprintf("sites=%d (high=%d medium=%d low=%d unresolved=%d) targets=%d tables=%d entries=%d iters=%d",
		sum.Sites, sum.SitesHigh, sum.SitesMedium, sum.SitesLow, sum.SitesUnresolved,
		sum.Targets, sum.Tables, sum.TableEntries, sum.Iters)
}

// maxFixpointIters bounds the macro disassemble→analyze loop. Each
// productive iteration discovers at least one new High target, and real
// programs nest dispatch only a few levels deep.
const maxFixpointIters = 8

// Resolve extracts facts from the image and runs the rule engine to a
// fixpoint. Every High-confidence target recovered on one iteration
// seeds the recursive disassembler on the next, so dispatch arms hidden
// behind jump tables — and any nested dispatch inside them — are
// analyzed too. The loop stops when an iteration learns no new root.
func Resolve(img *obj.Image) *TargetSet {
	ptrs := scanCodePointers(img)
	known := make(map[uint64]bool)
	var extra []uint64
	var ts *TargetSet
	for iter := 1; iter <= maxFixpointIters; iter++ {
		d := dis.DisassembleWithRoots(img, extra)
		ts = analyze(img, d, ptrs)
		ts.Dis = d
		ts.Iters = iter
		added := false
		for _, r := range ts.Roots() {
			if !known[r] {
				known[r] = true
				extra = append(extra, r)
				added = true
			}
		}
		if !added {
			break
		}
	}
	return ts
}
