package resolve

import (
	"sort"

	"github.com/eurosys26p57/chimera/internal/dis"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

// The rule engine is a forward abstract interpretation over straight-line
// runs of the disassembly. Each register holds one abstract value:
//
//	const  — exact address/integer from lui/auipc/addi/addiw chains
//	idx    — unsigned index with a proven bound (remu/andi/sltiu/bgeu/bltu),
//	         scaled by slli/shNadd into a byte offset with a fixed stride
//	ptr    — table pointer: const base + scaled idx
//	slot   — value loaded from a table slice (ld/lw through ptr) or from a
//	         single statically-known slot (const base or gp-relative)
//	flag   — sltiu/sltu comparison result, remembered so the following
//	         beq/bne can refine the compared register's bound
//
// State is cleared wherever a second statically-visible path can join the
// run (jump targets, roots, gaps), so a fact can never leak across a
// merge it does not dominate. The one cross-run fact is the bltu bound:
// `bltu idx, bound, L` proves idx < bound on the TAKEN side, so the bound
// is forwarded to L when L has no other statically-visible predecessor.
type absKind uint8

const (
	kNone absKind = iota
	kConst
	kIdx
	kPtr
	kSlot
	kFlag
)

type absVal struct {
	kind   absKind
	val    uint64    // const value | ptr/slot base address
	count  uint64    // entries provable for idx/ptr/slot (1 for single slot)
	stride uint64    // bytes per index step (idx/ptr), table stride (slot)
	width  int       // load width for slot (4 or 8)
	src    riscv.Reg // compared register for flag
	signed bool      // bound came from signed rem: not exhaustive
}

type interp struct {
	img     *obj.Image
	d       *dis.Result
	ptrs    []codePtr
	anchors map[uint64]bool
	// jumpCount counts statically-visible jumps/branches into each
	// address; >0 means a side entry exists and linear facts must reset.
	jumpCount map[uint64]int
	// bltuBound forwards `bltu reg, const, L` bounds to L (see above).
	bltuBound map[uint64]struct {
		reg   riscv.Reg
		bound uint64
	}
	st    [32]absVal
	ts    *TargetSet
	facts map[string]int
}

// analyze runs the rule engine over one disassembly iteration.
func analyze(img *obj.Image, d *dis.Result, ptrs []codePtr) *TargetSet {
	it := &interp{
		img:     img,
		d:       d,
		ptrs:    ptrs,
		anchors: anchorSet(d.Roots),
		ts:      &TargetSet{Sites: make(map[uint64]*Site)},
		facts:   make(map[string]int),
	}
	it.facts["code-pointer"] = len(ptrs)
	it.facts["anchor"] = len(it.anchors)
	it.indexFlow()
	it.run()
	it.ts.FactCounts = it.facts
	sort.Slice(it.ts.Tables, func(i, j int) bool { return it.ts.Tables[i].Base < it.ts.Tables[j].Base })
	return it.ts
}

// indexFlow records every statically-visible jump/branch target and the
// single-predecessor bltu bound forwards.
func (it *interp) indexFlow() {
	it.jumpCount = make(map[uint64]int)
	it.bltuBound = make(map[uint64]struct {
		reg   riscv.Reg
		bound uint64
	})
	roots := make(map[uint64]bool, len(it.d.Roots))
	for _, r := range it.d.Roots {
		roots[r] = true
	}
	for _, pc := range it.d.Order {
		in := it.d.Insns[pc]
		switch {
		case in.Op == riscv.JAL:
			it.jumpCount[pc+uint64(in.Imm)]++
		case in.IsBranch():
			it.jumpCount[pc+uint64(in.Imm)]++
		}
	}
	// Second pass: a bltu bound is forwardable only when its target has
	// exactly one statically-visible in-edge (the bltu itself) and is not
	// a root (roots can be entered indirectly).
	for _, pc := range it.d.Order {
		in := it.d.Insns[pc]
		if in.Op != riscv.BLTU {
			continue
		}
		tgt := pc + uint64(in.Imm)
		if it.jumpCount[tgt] != 1 || roots[tgt] {
			continue
		}
		// Reconstruct the bound from the state at the branch during the
		// main pass; here we only note eligibility.
		it.bltuBound[tgt] = struct {
			reg   riscv.Reg
			bound uint64
		}{reg: riscv.Zero}
	}
}

func (it *interp) clear() {
	for i := range it.st {
		it.st[i] = absVal{}
	}
}

func (it *interp) get(r riscv.Reg) absVal {
	if r == riscv.Zero {
		return absVal{kind: kConst, val: 0}
	}
	return it.st[r]
}

func (it *interp) set(r riscv.Reg, v absVal) {
	if r != riscv.Zero {
		it.st[r] = v
	}
}

// killCallerSaved models an ABI call boundary.
func (it *interp) killCallerSaved() {
	it.st[riscv.RA] = absVal{}
	for r := riscv.T0; r <= riscv.T2; r++ {
		it.st[r] = absVal{}
	}
	for r := riscv.A0; r <= riscv.A7; r++ {
		it.st[r] = absVal{}
	}
	for r := riscv.T3; r <= riscv.T6; r++ {
		it.st[r] = absVal{}
	}
}

func sext32(v uint64) uint64 { return uint64(int64(int32(uint32(v)))) }

// run walks the disassembly in address order, segmenting into
// straight-line runs and applying the transfer rules.
func (it *interp) run() {
	prevEnd := uint64(0)
	cont := false // previous instruction falls through into this one
	for _, pc := range it.d.Order {
		in := it.d.Insns[pc]
		if !cont || pc != prevEnd {
			it.clear()
			if fwd, ok := it.bltuBound[pc]; ok && fwd.reg != riscv.Zero && fwd.bound > 0 {
				it.set(fwd.reg, absVal{kind: kIdx, val: 0, count: fwd.bound, stride: 1})
			}
		} else if it.jumpCount[pc] > 0 {
			// A statically-visible side entry joins here: linear facts
			// from the fallthrough path do not dominate this point.
			it.clear()
		}
		prevEnd = pc + uint64(in.Len)
		cont = it.transfer(pc, in)
	}
}

// transfer applies one instruction's rule and reports whether the run
// continues at the fallthrough.
func (it *interp) transfer(pc uint64, in riscv.Inst) bool {
	switch in.Op {
	case riscv.LUI:
		it.set(in.Rd, absVal{kind: kConst, val: uint64(in.Imm << 12)})
		it.facts["materialization"]++
	case riscv.AUIPC:
		it.set(in.Rd, absVal{kind: kConst, val: pc + uint64(in.Imm<<12)})
		it.facts["materialization"]++
	case riscv.ADDI:
		a := it.get(in.Rs1)
		switch {
		case a.kind == kConst:
			it.set(in.Rd, absVal{kind: kConst, val: a.val + uint64(in.Imm)})
			it.facts["materialization"]++
		case in.Imm == 0:
			it.set(in.Rd, a) // mv
		default:
			it.set(in.Rd, absVal{})
		}
	case riscv.ADDIW:
		a := it.get(in.Rs1)
		switch {
		case a.kind == kConst:
			it.set(in.Rd, absVal{kind: kConst, val: sext32(a.val + uint64(in.Imm))})
			it.facts["materialization"]++
		case in.Imm == 0 && a.kind == kIdx && a.count*a.stride < 1<<31:
			it.set(in.Rd, a) // sext.w of a small bounded index is identity
		default:
			it.set(in.Rd, absVal{})
		}
	case riscv.SLLI, riscv.SLLIW:
		a := it.get(in.Rs1)
		sh := uint(in.Imm) & 63
		switch {
		case a.kind == kConst && in.Op == riscv.SLLI:
			it.set(in.Rd, absVal{kind: kConst, val: a.val << sh})
		case a.kind == kIdx && a.count<<sh < 1<<31:
			a.stride <<= sh
			it.set(in.Rd, a)
		default:
			it.set(in.Rd, absVal{})
		}
	case riscv.ANDI:
		if in.Imm >= 0 && in.Imm < 1<<16 {
			it.set(in.Rd, absVal{kind: kIdx, count: uint64(in.Imm) + 1, stride: 1})
			it.facts["bound"]++
		} else {
			it.set(in.Rd, absVal{})
		}
	case riscv.REMU, riscv.REMUW:
		b := it.get(in.Rs2)
		if b.kind == kConst && b.val > 0 && b.val <= 1<<16 {
			it.set(in.Rd, absVal{kind: kIdx, count: b.val, stride: 1})
			it.facts["bound"]++
		} else {
			it.set(in.Rd, absVal{})
		}
	case riscv.REM, riscv.REMW:
		// A signed remainder of an unknown value may be negative, so the
		// bound is real only for nonnegative inputs we cannot prove:
		// the fact survives but is tainted and can never reach High.
		b := it.get(in.Rs2)
		if b.kind == kConst && b.val > 0 && b.val <= 1<<16 {
			it.set(in.Rd, absVal{kind: kIdx, count: b.val, stride: 1, signed: true})
			it.facts["bound"]++
		} else {
			it.set(in.Rd, absVal{})
		}
	case riscv.SLTIU:
		if in.Imm > 0 {
			it.set(in.Rd, absVal{kind: kFlag, src: in.Rs1, count: uint64(in.Imm)})
			it.facts["bound"]++
		} else {
			it.set(in.Rd, absVal{})
		}
	case riscv.SLTU:
		b := it.get(in.Rs2)
		if b.kind == kConst && b.val > 0 {
			it.set(in.Rd, absVal{kind: kFlag, src: in.Rs1, count: b.val})
			it.facts["bound"]++
		} else {
			it.set(in.Rd, absVal{})
		}
	case riscv.ADD:
		a, b := it.get(in.Rs1), it.get(in.Rs2)
		switch {
		// add rd, zero, x (c.mv expands here) is a plain copy.
		case a.kind == kConst && a.val == 0 && b.kind != kConst:
			it.set(in.Rd, b)
		case b.kind == kConst && b.val == 0 && a.kind != kConst:
			it.set(in.Rd, a)
		case a.kind == kConst && b.kind == kConst:
			it.set(in.Rd, absVal{kind: kConst, val: a.val + b.val})
		case a.kind == kConst && b.kind == kIdx && b.stride > 0:
			it.set(in.Rd, absVal{kind: kPtr, val: a.val, count: b.count, stride: b.stride, signed: b.signed})
		case b.kind == kConst && a.kind == kIdx && a.stride > 0:
			it.set(in.Rd, absVal{kind: kPtr, val: b.val, count: a.count, stride: a.stride, signed: a.signed})
		default:
			it.set(in.Rd, absVal{})
		}
	case riscv.SH1ADD, riscv.SH2ADD, riscv.SH3ADD:
		sh := uint(1 + in.Op - riscv.SH1ADD)
		a, b := it.get(in.Rs1), it.get(in.Rs2)
		if a.kind == kIdx && b.kind == kConst && a.count<<sh < 1<<31 {
			it.set(in.Rd, absVal{kind: kPtr, val: b.val, count: a.count, stride: a.stride << sh, signed: a.signed})
		} else if a.kind == kConst && b.kind == kConst {
			it.set(in.Rd, absVal{kind: kConst, val: (a.val << sh) + b.val})
		} else {
			it.set(in.Rd, absVal{})
		}
	case riscv.LD, riscv.LW, riscv.LWU:
		it.load(pc, in)
	case riscv.BEQ, riscv.BNE:
		// sltiu/sltu flag refinement: `sltiu f, x, B; bne f, zero, L`
		// proves x < B on the taken side; `beq f, zero, L` proves it on
		// the fallthrough. Only the fallthrough refinement is applied
		// here; the taken side starts its own run.
		a := it.get(in.Rs1)
		if a.kind == kFlag && in.Rs2 == riscv.Zero && in.Op == riscv.BEQ {
			it.set(a.src, absVal{kind: kIdx, count: a.count, stride: 1})
		}
	case riscv.BGEU:
		// `bgeu x, bound, L`: the fallthrough proves x < bound.
		b := it.get(in.Rs2)
		if b.kind == kConst && b.val > 0 && b.val <= 1<<16 {
			it.set(in.Rs1, absVal{kind: kIdx, count: b.val, stride: 1})
			it.facts["bound"]++
		}
	case riscv.BLTU:
		// `bltu x, bound, L`: the TAKEN side proves x < bound. Forward
		// the bound to L when L's only static in-edge is this branch.
		b := it.get(in.Rs2)
		tgt := pc + uint64(in.Imm)
		if fwd, ok := it.bltuBound[tgt]; ok && b.kind == kConst && b.val > 0 && b.val <= 1<<16 {
			fwd.reg, fwd.bound = in.Rs1, b.val
			it.bltuBound[tgt] = fwd
			it.facts["bound"]++
		}
	case riscv.JAL:
		if in.Rd == riscv.RA {
			it.killCallerSaved()
			return true
		}
		return false
	case riscv.JALR:
		it.site(pc, in)
		if in.Rd == riscv.RA {
			it.killCallerSaved()
			return true
		}
		return false
	case riscv.ECALL:
		// The syscall ABI clobbers a0/a1.
		it.set(riscv.A0, absVal{})
		it.set(riscv.A1, absVal{})
	case riscv.EBREAK:
		// A trap handler may resume with arbitrary register state.
		it.clear()
	default:
		if in.IsBranch() {
			break // no register effects
		}
		// Any unmodeled instruction kills its destination. Stores and
		// branches carry Rd==0, so this is a no-op for them.
		it.set(in.Rd, absVal{})
	}
	return true
}

// load applies the slice rules for ld/lw/lwu.
func (it *interp) load(pc uint64, in riscv.Inst) {
	width := 8
	if in.Op != riscv.LD {
		width = 4
	}
	a := it.get(in.Rs1)
	switch {
	case a.kind == kPtr && int(a.stride) == width && !hasOverflow(a.val, uint64(in.Imm), a.count*a.stride):
		// A shifted-index slice: base + idx*stride, stride == width.
		it.set(in.Rd, absVal{
			kind: kSlot, val: a.val + uint64(in.Imm),
			count: a.count, stride: a.stride, width: width, signed: a.signed,
		})
		it.facts["slice"]++
	case a.kind == kConst:
		it.set(in.Rd, absVal{kind: kSlot, val: a.val + uint64(in.Imm), count: 1, width: width})
		it.facts["slice"]++
	case in.Rs1 == riscv.GP && a.kind == kNone && it.img.GP != 0:
		// gp-relative load from a statically-known slot.
		it.set(in.Rd, absVal{kind: kSlot, val: it.img.GP + uint64(in.Imm), count: 1, width: width})
		it.facts["slice"]++
	default:
		it.set(in.Rd, absVal{})
	}
}

func hasOverflow(base, off, extent uint64) bool {
	return base+off < base || base+off+extent < base+off
}

// maxWeakCandidates caps how many code-pointer-constant candidates an
// unresolved site may accumulate.
const maxWeakCandidates = 64

// site applies the site rules at a jalr.
func (it *interp) site(pc uint64, in riscv.Inst) {
	if in.Rs1 == riscv.RA && in.Imm == 0 && in.Rd == riscv.Zero {
		return // plain return: targets are return addresses, not data flow
	}
	s := &Site{Addr: pc, Call: in.Rd == riscv.RA}
	it.ts.Sites[pc] = s
	v := it.get(in.Rs1)
	switch {
	case v.kind == kConst:
		tgt := (v.val + uint64(in.Imm)) &^ 1
		if validCode(it.img, tgt) {
			s.Targets = append(s.Targets, Target{Addr: tgt, Tier: TierHigh, Rule: "const-target"})
			s.Exhaustive = true
			return
		}
	case v.kind == kSlot && in.Imm == 0 && v.count == 1:
		if it.singleSlot(s, v) {
			return
		}
	case v.kind == kSlot && in.Imm == 0 && v.count > 1:
		if it.tableSlice(s, v) {
			return
		}
	}
	// Unresolved: fall back to the weak code-pointer-constant facts.
	for _, p := range it.ptrs {
		if len(s.Targets) >= maxWeakCandidates {
			break
		}
		tier := TierMedium
		rule := "rodata-code-pointer"
		if p.Writable {
			tier = TierLow
			rule = "data-code-pointer"
		}
		s.Targets = append(s.Targets, Target{Addr: p.Target, Tier: tier, Rule: rule})
	}
	sortTargets(s)
}

// singleSlot resolves a jalr through one statically-known pointer slot.
// It reports whether the slot yielded a candidate.
func (it *interp) singleSlot(s *Site, v absVal) bool {
	vals, sec, ok := readTable(it.img, v.val, 1, v.width)
	if !ok || !validCode(it.img, vals[0]) {
		return false
	}
	writable := sec.Perm&obj.PermW != 0
	tier := TierHigh
	rule := "slot-load"
	switch {
	case !writable:
		rule = "rodata-slot-load"
	case it.anchors[vals[0]]:
		rule = "anchored-slot-load"
	default:
		tier = TierMedium
	}
	s.Targets = append(s.Targets, Target{Addr: vals[0], Tier: tier, Rule: rule})
	s.Exhaustive = tier == TierHigh
	return true
}

// tableSlice resolves a complete bounded jump-table slice. It reports
// whether the slice yielded candidates.
func (it *interp) tableSlice(s *Site, v absVal) bool {
	vals, sec, ok := readTable(it.img, v.val, int(v.count), v.width)
	if !ok {
		return false
	}
	writable := sec.Perm&obj.PermW != 0
	allValid, allAnchored := true, true
	for _, t := range vals {
		if !validCode(it.img, t) {
			allValid = false
		}
		if !it.anchors[t] {
			allAnchored = false
		}
	}
	tier := TierMedium
	rule := "table-slice"
	if allValid && !v.signed {
		switch {
		case !writable:
			tier = TierHigh
			rule = "rodata-table-slice"
		case allAnchored:
			tier = TierHigh
			rule = "anchored-table-slice"
		}
	}
	if allValid {
		tbl := Table{
			Base: v.val, Stride: v.width, Count: int(v.count),
			Section: sec.Name, Writable: writable,
		}
		s.Table = &tbl
		it.ts.Tables = append(it.ts.Tables, tbl)
	}
	seen := make(map[uint64]bool, len(vals))
	for _, t := range vals {
		if !validCode(it.img, t) || seen[t] {
			continue
		}
		seen[t] = true
		s.Targets = append(s.Targets, Target{Addr: t, Tier: tier, Rule: rule})
	}
	s.Exhaustive = allValid && tier == TierHigh
	sortTargets(s)
	return len(s.Targets) > 0
}

func sortTargets(s *Site) {
	sort.Slice(s.Targets, func(i, j int) bool {
		if s.Targets[i].Addr != s.Targets[j].Addr {
			return s.Targets[i].Addr < s.Targets[j].Addr
		}
		return s.Targets[i].Tier > s.Targets[j].Tier
	})
}
