package resolve_test

import (
	"testing"

	"github.com/eurosys26p57/chimera/internal/asm"
	"github.com/eurosys26p57/chimera/internal/dis"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/resolve"
	"github.com/eurosys26p57/chimera/internal/riscv"
	"github.com/eurosys26p57/chimera/internal/workload"
)

// dispatchCases enumerates every jump-table-emitting configuration of the
// workload dispatch family. The recovery-rate pins are exact: every
// dispatch site must resolve High/Exhaustive, so a rule regression fails
// loudly rather than shaving a percentage.
var dispatchCases = []struct {
	name string
	p    workload.DispatchParams
}{
	{"remu-rodata", workload.DispatchParams{Name: "d", Arms: 4, VecArms: 2, Rounds: 40}},
	{"remu-rodata-compressed", workload.DispatchParams{Name: "d", Arms: 4, VecArms: 2, Rounds: 40, Compress: true}},
	{"bgeu-guard", workload.DispatchParams{Name: "d", Arms: 4, VecArms: 2, Rounds: 40, Bound: workload.BoundBGEU}},
	{"sltiu-guard", workload.DispatchParams{Name: "d", Arms: 4, VecArms: 2, Rounds: 40, Bound: workload.BoundSLTIU}},
	{"bltu-guard", workload.DispatchParams{Name: "d", Arms: 4, VecArms: 2, Rounds: 40, Bound: workload.BoundBLTU}},
	{"midentry", workload.DispatchParams{Name: "d", Arms: 4, VecArms: 2, Rounds: 40, MidEntry: true}},
	{"midentry-compressed", workload.DispatchParams{Name: "d", Arms: 5, VecArms: 3, Rounds: 40, MidEntry: true, Compress: true}},
	{"anchored-data-table", workload.DispatchParams{Name: "d", Arms: 4, VecArms: 2, Rounds: 40, TableInData: true}},
	{"anchored-data-midentry", workload.DispatchParams{Name: "d", Arms: 4, VecArms: 2, Rounds: 40, TableInData: true, MidEntry: true}},
}

func TestDispatchFamilyRecovery(t *testing.T) {
	for _, tc := range dispatchCases {
		for _, vector := range []bool{false, true} {
			name := tc.name
			if vector {
				name += "-vector"
			}
			t.Run(name, func(t *testing.T) {
				img, err := workload.BuildDispatch(tc.p, vector)
				if err != nil {
					t.Fatal(err)
				}
				ts := resolve.Resolve(img)
				sum := ts.Summary()
				if sum.Sites == 0 {
					t.Fatal("no indirect sites found")
				}
				// Exact pin: every site in this family must be High.
				if sum.SitesHigh != sum.Sites {
					t.Fatalf("recovery rate regressed: %d/%d sites High (%s)",
						sum.SitesHigh, sum.Sites, sum)
				}
				slots := tc.p.Arms
				if tc.p.MidEntry {
					slots++
				}
				var site *resolve.Site
				for _, s := range ts.Sites {
					if s.Table != nil {
						site = s
					}
				}
				if site == nil {
					t.Fatalf("no sliced jump-table site recovered: %s", sum)
				}
				if !site.Exhaustive {
					t.Fatalf("dispatch site %#x not exhaustive", site.Addr)
				}
				if site.Table.Count != slots || site.Table.Stride != 8 {
					t.Fatalf("table extent = %d entries stride %d, want %d stride 8",
						site.Table.Count, site.Table.Stride, slots)
				}
				if got := len(site.Targets); got != slots {
					t.Fatalf("got %d targets, want %d", got, slots)
				}
				// Every recovered target must be disassembled in the
				// completed result.
				for _, tg := range site.Targets {
					if tg.Tier != resolve.TierHigh {
						t.Fatalf("target %#x tier %v, want high", tg.Addr, tg.Tier)
					}
					if _, ok := ts.Dis.Insns[tg.Addr]; !ok {
						t.Fatalf("recovered target %#x not disassembled", tg.Addr)
					}
				}
				// The hidden-arm configurations must actually have been
				// hidden: the completed disassembly knows strictly more
				// than the baseline.
				if !tc.p.TableInData {
					base := len(dis.Disassemble(img).Insns)
					if got := len(ts.Dis.Insns); got <= base {
						t.Fatalf("resolver recovered nothing: %d insns vs baseline %d", got, base)
					}
				}
			})
		}
	}
}

// TestSpecFamilyIndirect covers the SPEC-shaped family's two indirect
// idioms: the function-pointer table in writable .data (every entry a
// function symbol — the anchored-table rule) and the single alt-entry
// slot (anchored-slot rule).
func TestSpecFamilyIndirect(t *testing.T) {
	p := workload.SpecParams{
		Name: "spec", CodeKB: 64, Funcs: 4, VecFuncs: 2, BodyInsts: 12,
		IndirectEvery: 2, ErrEntryEvery: 3, Rounds: 12, Seed: 7,
	}
	for _, vector := range []bool{false, true} {
		img, err := workload.BuildSpec(p, vector)
		if err != nil {
			t.Fatal(err)
		}
		ts := resolve.Resolve(img)
		sum := ts.Summary()
		if sum.Sites < 2 {
			t.Fatalf("want ≥2 indirect sites, got %s", sum)
		}
		if sum.SitesHigh != sum.Sites {
			t.Fatalf("spec family recovery regressed: %s", sum)
		}
		var tabled int
		for _, s := range ts.Sites {
			if !s.Exhaustive {
				t.Fatalf("site %#x not exhaustive", s.Addr)
			}
			if s.Table != nil {
				tabled++
				if s.Table.Count != p.Funcs {
					t.Fatalf("ftable extent %d, want %d", s.Table.Count, p.Funcs)
				}
				if !s.Table.Writable {
					t.Fatal("ftable should be in writable data")
				}
			}
		}
		if tabled != 1 {
			t.Fatalf("want exactly one sliced table site, got %d", tabled)
		}
	}
}

// TestConstTarget checks the direct-materialization rule.
func TestConstTarget(t *testing.T) {
	b := asm.NewBuilder(riscv.RV64GC)
	b.Func("main")
	b.La(riscv.T0, "helper")
	b.I(riscv.Inst{Op: riscv.JALR, Rd: riscv.RA, Rs1: riscv.T0})
	b.Li(riscv.A0, 0)
	b.Li(riscv.A7, 93)
	b.Ecall()
	b.Label("helper") // hidden: reachable only through the jalr
	b.Ret()
	img, err := b.Build("const", "main")
	if err != nil {
		t.Fatal(err)
	}
	ts := resolve.Resolve(img)
	if len(ts.Sites) != 1 {
		t.Fatalf("want 1 site, got %d", len(ts.Sites))
	}
	for _, s := range ts.Sites {
		if !s.Exhaustive || len(s.Targets) != 1 || s.Targets[0].Tier != resolve.TierHigh {
			t.Fatalf("const target not High/exhaustive: %+v", s)
		}
		if s.Targets[0].Rule != "const-target" {
			t.Fatalf("rule = %q", s.Targets[0].Rule)
		}
	}
}

// TestSignedRemTaintsBound checks that a bound derived from the signed
// remainder alone can never reach High.
func TestSignedRemTaintsBound(t *testing.T) {
	img := buildTableProgram(t, func(b *asm.Builder) {
		b.Li(riscv.T0, 4)
		b.Op(riscv.REM, riscv.T1, riscv.S9, riscv.T0)
	}, false)
	ts := resolve.Resolve(img)
	site := soleTableSite(t, ts)
	if site.Exhaustive || site.Tier() != resolve.TierMedium {
		t.Fatalf("signed rem slice should be Medium, not exhaustive: tier=%v exhaustive=%v",
			site.Tier(), site.Exhaustive)
	}
}

// TestWritableUnanchoredTableIsMedium checks the table-location rule: a
// writable table whose entries are not all symbol anchors is Medium.
func TestWritableUnanchoredTableIsMedium(t *testing.T) {
	img := buildTableProgram(t, func(b *asm.Builder) {
		b.Li(riscv.T0, 4)
		b.Op(riscv.REMU, riscv.T1, riscv.S9, riscv.T0)
	}, true)
	ts := resolve.Resolve(img)
	site := soleTableSite(t, ts)
	if site.Exhaustive || site.Tier() != resolve.TierMedium {
		t.Fatalf("writable unanchored table should be Medium: tier=%v exhaustive=%v",
			site.Tier(), site.Exhaustive)
	}
}

// TestGPRelativeSlot checks the gp-relative single-slot rule.
func TestGPRelativeSlot(t *testing.T) {
	b := asm.NewBuilder(riscv.RV64GC)
	b.Func("main")
	// The builder anchors gp 0x800 into .sdata; "gpslot" is looked up
	// after build to compute the offset, so emit a placeholder load via
	// the symbol instead: la + ld through a const base exercises the same
	// slot rule, and a second load goes through gp below.
	b.La(riscv.T0, "gpslot")
	b.Load(riscv.LD, riscv.T1, riscv.T0, 0)
	b.I(riscv.Inst{Op: riscv.JALR, Rd: riscv.RA, Rs1: riscv.T1})
	b.Li(riscv.A0, 0)
	b.Li(riscv.A7, 93)
	b.Ecall()
	b.Func("fn") // anchored: the slot lives in writable data
	b.Ret()
	b.DataI64("gpslot", []int64{0})
	img, err := b.Build("gprel", "main")
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := img.Lookup("fn")
	slot, _ := img.Lookup("gpslot")
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(fn.Addr >> (8 * i))
	}
	if err := img.WriteAt(slot.Addr, buf[:]); err != nil {
		t.Fatal(err)
	}
	ts := resolve.Resolve(img)
	if len(ts.Sites) != 1 {
		t.Fatalf("want 1 site, got %d", len(ts.Sites))
	}
	for _, s := range ts.Sites {
		if !s.Exhaustive || s.Targets[0].Addr != fn.Addr {
			t.Fatalf("anchored slot not exhaustive: %+v", s)
		}
		if s.Targets[0].Rule != "anchored-slot-load" {
			t.Fatalf("rule = %q", s.Targets[0].Rule)
		}
	}
}

// TestNestedDispatchFixpoint hides a second dispatch inside a hidden arm
// and checks the macro fixpoint finds it on a later iteration.
func TestNestedDispatchFixpoint(t *testing.T) {
	b := asm.NewBuilder(riscv.RV64GC)
	armA := obj.TextBase + b.PC()
	b.Label("armA") // outer arm, itself dispatching through a second table
	b.Li(riscv.T0, 2)
	b.Op(riscv.REMU, riscv.T1, riscv.S9, riscv.T0)
	b.Imm(riscv.SLLI, riscv.T1, riscv.T1, 3)
	b.La(riscv.T2, "tab2")
	b.Op(riscv.ADD, riscv.T2, riscv.T2, riscv.T1)
	b.Load(riscv.LD, riscv.T2, riscv.T2, 0)
	b.I(riscv.Inst{Op: riscv.JALR, Rd: riscv.Zero, Rs1: riscv.T2})
	armB := obj.TextBase + b.PC()
	b.Label("armB")
	b.Imm(riscv.ADDI, riscv.A0, riscv.A0, 1)
	b.Ret()
	armC := obj.TextBase + b.PC()
	b.Label("armC")
	b.Imm(riscv.ADDI, riscv.A0, riscv.A0, 2)
	b.Ret()
	b.Func("main")
	b.Li(riscv.S9, 1)
	b.Li(riscv.A0, 0)
	b.Li(riscv.T0, 1)
	b.Op(riscv.REMU, riscv.T1, riscv.S9, riscv.T0)
	b.Imm(riscv.SLLI, riscv.T1, riscv.T1, 3)
	b.La(riscv.T2, "tab1")
	b.Op(riscv.ADD, riscv.T2, riscv.T2, riscv.T1)
	b.Load(riscv.LD, riscv.T2, riscv.T2, 0)
	b.I(riscv.Inst{Op: riscv.JALR, Rd: riscv.RA, Rs1: riscv.T2})
	b.Li(riscv.A7, 93)
	b.Ecall()
	b.Rodata("tab1", le64(armA))
	b.Rodata("tab2", le64(armB, armC))
	img, err := b.Build("nested", "main")
	if err != nil {
		t.Fatal(err)
	}
	ts := resolve.Resolve(img)
	if ts.Iters < 2 {
		t.Fatalf("nested dispatch needs ≥2 fixpoint iterations, got %d", ts.Iters)
	}
	if len(ts.Sites) != 2 {
		t.Fatalf("want 2 sites (outer + nested), got %d", len(ts.Sites))
	}
	roots := ts.Roots()
	want := map[uint64]bool{armA: true, armB: true, armC: true}
	for _, r := range roots {
		delete(want, r)
	}
	if len(want) != 0 {
		t.Fatalf("missing roots %v in %v", want, roots)
	}
	for _, s := range ts.Sites {
		if !s.Exhaustive {
			t.Fatalf("site %#x not exhaustive", s.Addr)
		}
	}
}

// --- helpers ---------------------------------------------------------------

func le64(vals ...uint64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(v >> (8 * j))
		}
	}
	return out
}

// buildTableProgram emits hidden arms + a 4-entry table + a main whose
// index bound comes from the provided emitter (which must leave the index
// in t1).
func buildTableProgram(t *testing.T, bound func(*asm.Builder), writableTable bool) *obj.Image {
	t.Helper()
	b := asm.NewBuilder(riscv.RV64GC)
	addrs := make([]uint64, 4)
	for i := range addrs {
		addrs[i] = obj.TextBase + b.PC()
		b.Imm(riscv.ADDI, riscv.A0, riscv.A0, int64(i+1))
		b.Ret()
	}
	b.Func("main")
	b.Li(riscv.S9, 2)
	b.Li(riscv.A0, 0)
	bound(b)
	b.Imm(riscv.SLLI, riscv.T1, riscv.T1, 3)
	b.La(riscv.T2, "tab")
	b.Op(riscv.ADD, riscv.T2, riscv.T2, riscv.T1)
	b.Load(riscv.LD, riscv.T2, riscv.T2, 0)
	b.I(riscv.Inst{Op: riscv.JALR, Rd: riscv.RA, Rs1: riscv.T2})
	b.Li(riscv.A7, 93)
	b.Ecall()
	if writableTable {
		b.Data("tab", le64(addrs...))
	} else {
		b.Rodata("tab", le64(addrs...))
	}
	img, err := b.Build("tabprog", "main")
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func soleTableSite(t *testing.T, ts *resolve.TargetSet) *resolve.Site {
	t.Helper()
	var site *resolve.Site
	for _, s := range ts.Sites {
		if len(s.Targets) > 0 {
			if site != nil {
				t.Fatal("more than one candidate-bearing site")
			}
			site = s
		}
	}
	if site == nil {
		t.Fatal("no site with candidates")
	}
	return site
}
