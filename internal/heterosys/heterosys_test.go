package heterosys

import (
	"testing"

	"github.com/eurosys26p57/chimera/internal/kernel"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
	"github.com/eurosys26p57/chimera/internal/workload"
)

// runOn dispatches a fresh task of pr on a machine with the given pools and
// returns the process after completion.
func runOn(t *testing.T, pr *Prepared, isa riscv.Ext) *kernel.Process {
	t.Helper()
	task, err := pr.NewTask("t", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Proc.MigrateTo(isa); err != nil {
		t.Fatal(err)
	}
	task.Proc.CPU.ISA = isa
	for i := 0; i < 10_000; i++ {
		_, st, err := task.Proc.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if st == kernel.StatusExited {
			return task.Proc
		}
		if st == kernel.StatusNeedMigration {
			t.Fatal("unexpected migration request")
		}
	}
	t.Fatal("task did not finish")
	return nil
}

func nativeExit(t *testing.T, img *obj.Image) uint64 {
	t.Helper()
	p, err := kernel.NewProcess("native", []kernel.Variant{{ISA: img.ISA, Image: img}})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := p.Run(2_000_000_000)
	if err != nil || st != kernel.StatusExited {
		t.Fatalf("native run: %v %v", st, err)
	}
	return p.ExitCode
}

func TestAllSystemsMatmulBothDirections(t *testing.T) {
	base, ext, err := workload.MatmulPair(10, true)
	if err != nil {
		t.Fatal(err)
	}
	want := nativeExit(t, ext)
	if w2 := nativeExit(t, base); w2 != want {
		t.Fatalf("version disagreement: %d vs %d", w2, want)
	}
	for _, sys := range Systems {
		for _, inputExt := range []bool{true, false} {
			pr, err := Prepare(sys, base, ext, inputExt)
			if err != nil {
				t.Fatalf("%s inputExt=%v: %v", sys, inputExt, err)
			}
			// Run on an extension core.
			p := runOn(t, pr, riscv.RV64GCV)
			if p.ExitCode != want {
				t.Errorf("%s inputExt=%v on ext core: exit %d, want %d", sys, inputExt, p.ExitCode, want)
			}
			// Run on a base core (FAM with the ext input cannot).
			if sys == FAM && inputExt {
				continue
			}
			p = runOn(t, pr, riscv.RV64GC)
			if p.ExitCode != want {
				t.Errorf("%s inputExt=%v on base core: exit %d, want %d", sys, inputExt, p.ExitCode, want)
			}
		}
	}
}

func TestChimeraUpgradeAccelerates(t *testing.T) {
	base, ext, err := workload.MatmulPair(16, true)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Prepare(Chimera, base, ext, false) // base input: upgrading
	if err != nil {
		t.Fatal(err)
	}
	onBase := runOn(t, pr, riscv.RV64GC)
	onExt := runOn(t, pr, riscv.RV64GCV)
	if onBase.ExitCode != onExt.ExitCode {
		t.Fatalf("results differ: %d vs %d", onBase.ExitCode, onExt.ExitCode)
	}
	if onExt.CPU.Cycles >= onBase.CPU.Cycles {
		t.Errorf("upgraded run not faster: ext %d cycles vs base %d",
			onExt.CPU.Cycles, onBase.CPU.Cycles)
	}
}

func TestSpecThroughAllSystems(t *testing.T) {
	p := workload.SpecParams{
		Name: "mini", CodeKB: 1100, Funcs: 6, VecFuncs: 3, BodyInsts: 30,
		IndirectEvery: 3, ErrEntryEvery: 5, Rounds: 12, Seed: 7,
	}
	base, err := workload.BuildSpec(p, false)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := workload.BuildSpec(p, true)
	if err != nil {
		t.Fatal(err)
	}
	want := nativeExit(t, ext)
	for _, sys := range Systems {
		pr, err := Prepare(sys, base, ext, true)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		proc := runOn(t, pr, riscv.RV64GCV)
		if proc.ExitCode != want {
			t.Errorf("%s on ext core: exit %d, want %d", sys, proc.ExitCode, want)
		}
		if sys == FAM {
			continue
		}
		proc = runOn(t, pr, riscv.RV64GC)
		if proc.ExitCode != want {
			t.Errorf("%s on base core: exit %d, want %d", sys, proc.ExitCode, want)
		}
		if sys == Chimera {
			if proc.Counters.FaultRecoveries == 0 {
				t.Errorf("chimera: the alt-entry path produced no passive fault recoveries")
			}
		}
		if sys == Safer {
			if proc.Counters.Checks == 0 {
				t.Errorf("safer: no pointer checks recorded")
			}
		}
	}
}

func TestFig11StyleSchedule(t *testing.T) {
	// A miniature §6.1 run: 20 mixed tasks on a 2+2 machine under every
	// system; all results must agree and accounting must be sane.
	fibBase, fibExt, err := workload.FibPair(2, true)
	if err != nil {
		t.Fatal(err)
	}
	mmBase, mmExt, err := workload.MatmulPair(10, true)
	if err != nil {
		t.Fatal(err)
	}
	wantFib := nativeExit(t, fibExt)
	wantMM := nativeExit(t, mmExt)

	for _, sys := range Systems {
		prFib, err := Prepare(sys, fibBase, fibExt, true)
		if err != nil {
			t.Fatal(err)
		}
		prMM, err := Prepare(sys, mmBase, mmExt, true)
		if err != nil {
			t.Fatal(err)
		}
		m := kernel.NewMachine(2, 2)
		s := kernel.NewScheduler(m)
		s.SliceInstr = 50_000
		for i := 0; i < 20; i++ {
			var task *kernel.Task
			if i%2 == 0 {
				task, err = prFib.NewTask("fib", false)
			} else {
				task, err = prMM.NewTask("mm", true)
			}
			if err != nil {
				t.Fatal(err)
			}
			s.Submit(task)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		for _, task := range res.Tasks {
			want := wantFib
			if task.NeedsExt {
				want = wantMM
			}
			if task.Proc.ExitCode != want {
				t.Errorf("%s task %d: exit %d, want %d", sys, task.ID, task.Proc.ExitCode, want)
			}
		}
		if res.CPUTime == 0 || res.Latency == 0 {
			t.Errorf("%s: empty accounting %+v", sys, res)
		}
	}
}
