// Package heterosys composes the end-to-end heterogeneous computing
// systems compared in §6: Chimera (CHBP rewriting + the Chimera runtime),
// MELF (natively compiled multi-variant binaries), FAM (fault-and-migrate
// scheduling), and a Safer-based system (regenerated per-core binaries with
// runtime pointer checks).
package heterosys

import (
	"fmt"

	"github.com/eurosys26p57/chimera/internal/chbp"
	"github.com/eurosys26p57/chimera/internal/kernel"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/rewriters"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

// System identifies a heterogeneous computing system.
type System string

// The compared systems.
const (
	Chimera System = "chimera"
	MELF    System = "melf"
	FAM     System = "fam"
	Safer   System = "safer"
)

// Systems lists them in the paper's presentation order.
var Systems = []System{FAM, Safer, MELF, Chimera}

// Prepared holds everything needed to instantiate processes of one program
// under one system. Rewrites are done once and reused across task instances.
type Prepared struct {
	System   System
	Variants []kernel.Variant
	FAMMode  bool
}

// Prepare builds the per-core binaries for a program under the given
// system. baseImg and extImg are the two compiled versions of §6.1 (base =
// RV64GC only; ext = vector-optimized); inputExt selects which one is the
// system's input, mirroring the downgrade/upgrade halves of Fig. 11. MELF
// is the exception: as the compilation-based ideal it always gets both.
func Prepare(sys System, baseImg, extImg *obj.Image, inputExt bool) (*Prepared, error) {
	input := baseImg
	if inputExt {
		input = extImg
	}
	switch sys {
	case MELF:
		return &Prepared{System: sys, Variants: []kernel.Variant{
			{ISA: riscv.RV64GC, Image: baseImg},
			{ISA: riscv.RV64GCV, Image: extImg},
		}}, nil
	case FAM:
		return &Prepared{System: sys, FAMMode: true, Variants: []kernel.Variant{
			{ISA: input.ISA, Image: input},
		}}, nil
	case Chimera:
		if inputExt {
			res, err := chbp.Rewrite(input, chbp.Options{TargetISA: riscv.RV64GC})
			if err != nil {
				return nil, fmt.Errorf("heterosys: chimera downgrade: %w", err)
			}
			return &Prepared{System: sys, Variants: []kernel.Variant{
				{ISA: riscv.RV64GCV, Image: input},
				{ISA: riscv.RV64GC, Image: res.Image, Tables: res.Tables},
			}}, nil
		}
		res, err := chbp.Rewrite(input, chbp.Options{TargetISA: riscv.RV64GCV})
		if err != nil {
			return nil, fmt.Errorf("heterosys: chimera upgrade: %w", err)
		}
		return &Prepared{System: sys, Variants: []kernel.Variant{
			{ISA: riscv.RV64GC, Image: input},
			{ISA: riscv.RV64GCV, Image: res.Image, Tables: res.Tables},
		}}, nil
	case Safer:
		var target riscv.Ext
		var otherISA riscv.Ext
		if inputExt {
			target, otherISA = riscv.RV64GC, riscv.RV64GCV
		} else {
			target, otherISA = riscv.RV64GCV, riscv.RV64GC
		}
		rw, err := rewriters.Safer(input, target, false)
		if err != nil {
			return nil, fmt.Errorf("heterosys: safer: %w", err)
		}
		return &Prepared{System: sys, Variants: []kernel.Variant{
			{ISA: otherISA, Image: input},
			{ISA: target, Image: rw.Image, Tables: rw.Tables,
				AddrMap: rw.AddrMap, SaferChecks: true},
		}}, nil
	}
	return nil, fmt.Errorf("heterosys: unknown system %q", sys)
}

// NewTask instantiates a fresh process/task for a prepared program.
func (pr *Prepared) NewTask(name string, needsExt bool) (*kernel.Task, error) {
	p, err := kernel.NewProcess(name, pr.Variants)
	if err != nil {
		return nil, err
	}
	p.FAM = kernel.FAMPolicy(pr.FAMMode)
	return &kernel.Task{Proc: p, NeedsExt: needsExt}, nil
}
