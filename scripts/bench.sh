#!/bin/sh
# Emulator benchmark harness: runs the BenchmarkCPURun* emulated-MIPS
# benchmarks, the BenchmarkService*/BenchmarkRewriteBatch service suite, the
# coverage-guided campaign throughput benchmark (whole fuzzing execs/s), the
# store hit-path benchmarks (memory-tier verified hits, disk-store hit
# latency), and the BenchmarkResolve rewriter-config rows (runtime-rewrite
# fault rate and per-task p50/p99 with the indirect-target resolver off vs
# on), and distills the results into BENCH_emu.json (per benchmark: ns/op,
# emulated MIPS, ns per retired instruction, allocs/op, MB/s, batch
# items/s, faults/avoided/crashed per op, p50/p99 kcycles), plus a
# "matrix" block distilled from chimera-eval: per rewriter config, the
# pass/degraded/reject split and mean size/cycle overheads over the
# adversarial corpus. Run from anywhere; writes to the repo root.
#
#   scripts/bench.sh                # default -benchtime
#   BENCHTIME=5s scripts/bench.sh   # longer runs for stable numbers
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench CPURun (internal/emu, -benchtime $BENCHTIME)"
go test -run=- -bench='BenchmarkCPURun' -benchmem -benchtime "$BENCHTIME" \
    ./internal/emu/ | tee "$RAW"

# One campaign iteration is 2000 whole guest executions — one iteration is
# plenty of signal for the execs/s throughput number.
echo "== go test -bench CampaignExecs (internal/fuzzsvc, campaign throughput)"
go test -run=- -bench='BenchmarkCampaignExecs' -benchtime 1x \
    ./internal/fuzzsvc/ | tee -a "$RAW"

echo "== go test -bench Service|RewriteBatch (internal/service)"
go test -run=- -bench='BenchmarkService|BenchmarkRewriteBatch' -benchmem -benchtime 1x \
    ./internal/service/ | tee -a "$RAW"

echo "== go test -bench store hit paths (internal/store, -benchtime $BENCHTIME)"
go test -run=- -bench='BenchmarkMemoryHitParallel|BenchmarkDiskStoreHit' -benchmem \
    -benchtime "$BENCHTIME" ./internal/store/ | tee -a "$RAW"

# The resolver rows are simulated-cycle metrics (fault rate, per-task
# p50/p99), deterministic per pass — one iteration is the measurement.
echo "== go test -bench Resolve (internal/bench, fault-rate/p99 per rewriter config)"
go test -run=- -bench='BenchmarkResolve' -benchtime 1x \
    ./internal/bench/ | tee -a "$RAW"

# Distill `go test -bench` lines into JSON. Lines look like:
#   BenchmarkCPURunFib/blocks-8  865  3062081 ns/op  148.6 Minst/s  6.730 ns/inst  7 B/op  0 allocs/op
# The BenchmarkCPURunProfiler off/on pair also yields profiler_overhead_pct:
# the guest profiler's ns/inst cost relative to the profiler-off hot loop
# (the acceptance bound is < 2% for the off case vs the pre-profiler
# baseline; the on case documents the cost of enabling it).
awk '
BEGIN { print "{"; print "  \"benchmarks\": ["; n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    nsop = ""; mips = ""; nsinst = ""; allocs = ""; mbs = ""; items = ""
    faults = ""; avoided = ""; crashed = ""; p50 = ""; p99 = ""; execs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")       nsop = $i
        if ($(i+1) == "Minst/s")     mips = $i
        if ($(i+1) == "ns/inst")     nsinst = $i
        if ($(i+1) == "allocs/op")   allocs = $i
        if ($(i+1) == "MB/s")        mbs = $i
        if ($(i+1) == "items/s")     items = $i
        if ($(i+1) == "faults/op")   faults = $i
        if ($(i+1) == "avoided/op")  avoided = $i
        if ($(i+1) == "crashed/op")  crashed = $i
        if ($(i+1) == "p50-kcycles") p50 = $i
        if ($(i+1) == "p99-kcycles") p99 = $i
        if ($(i+1) == "execs/s")     execs = $i
    }
    if (nsop == "") next
    if (name == "BenchmarkCPURunProfiler/off" && nsinst != "") prof_off = nsinst
    if (name == "BenchmarkCPURunProfiler/on"  && nsinst != "") prof_on = nsinst
    if (name == "BenchmarkCPURunInstrument/off"      && nsinst != "") ins_off = nsinst
    if (name == "BenchmarkCPURunInstrument/nilhooks" && nsinst != "") ins_nil = nsinst
    if (name == "BenchmarkCPURunInstrument/coverage" && nsinst != "") ins_cov = nsinst
    if (name == "BenchmarkCPURunInstrument/cmplog"   && nsinst != "") ins_cmp = nsinst
    if (name == "BenchmarkCampaignExecs" && execs != "") campaign_execs = execs
    if (name == "BenchmarkResolve/chbp-off" && faults != "") { roff_f = faults; roff_p99 = p99 }
    if (name == "BenchmarkResolve/chbp-on"  && faults != "") { ron_f = faults; ron_p99 = p99 }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, nsop
    if (mips != "")    printf ", \"emulated_mips\": %s", mips
    if (nsinst != "")  printf ", \"ns_per_inst\": %s", nsinst
    if (allocs != "")  printf ", \"allocs_per_op\": %s", allocs
    if (mbs != "")     printf ", \"mb_per_s\": %s", mbs
    if (items != "")   printf ", \"items_per_s\": %s", items
    if (faults != "")  printf ", \"faults_per_op\": %s", faults
    if (avoided != "") printf ", \"avoided_per_op\": %s", avoided
    if (crashed != "") printf ", \"crashed_per_op\": %s", crashed
    if (p50 != "")     printf ", \"p50_kcycles\": %s", p50
    if (p99 != "")     printf ", \"p99_kcycles\": %s", p99
    if (execs != "")   printf ", \"execs_per_s\": %s", execs
    printf "}"
}
END {
    print "\n  ],"
    if (prof_off + 0 > 0 && prof_on != "")
        printf "  \"profiler_overhead_pct\": %.2f,\n", (prof_on - prof_off) / prof_off * 100
    if (ins_off + 0 > 0 && ins_cov != "" && ins_cmp != "") {
        printf "  \"instrument\": {\"ns_per_inst_off\": %s, \"ns_per_inst_nilhooks\": %s", ins_off, ins_nil
        printf ", \"ns_per_inst_coverage\": %s, \"ns_per_inst_cmplog\": %s", ins_cov, ins_cmp
        printf ", \"nilhooks_overhead_pct\": %.2f", (ins_nil - ins_off) / ins_off * 100
        printf ", \"coverage_overhead_pct\": %.2f", (ins_cov - ins_off) / ins_off * 100
        printf ", \"cmplog_overhead_pct\": %.2f", (ins_cmp - ins_off) / ins_off * 100
        if (campaign_execs != "") printf ", \"campaign_execs_per_s\": %s", campaign_execs
        print "},"
    }
    if (roff_f != "" && ron_f != "") {
        printf "  \"resolver\": {\"chbp_faults_per_op_off\": %s, \"chbp_faults_per_op_on\": %s", roff_f, ron_f
        if (ron_f + 0 > 0) printf ", \"fault_reduction_x\": %.1f", roff_f / ron_f
        else               printf ", \"fault_reduction_x\": \"inf\""
        printf ", \"chbp_p99_kcycles_off\": %s, \"chbp_p99_kcycles_on\": %s", roff_p99, ron_p99
        if (roff_p99 + 0 > 0)
            printf ", \"p99_reduction_pct\": %.2f", (roff_p99 - ron_p99) / roff_p99 * 100
        print "},"
    }
    print "  \"note\": \"profiler_overhead_pct = CPURunProfiler on-vs-off ns/inst delta; resolver = BenchmarkResolve chbp off-vs-on fault-rate and p99 deltas; instrument = CPURunInstrument hook-mode ns/inst deltas plus CampaignExecs fuzzing throughput\""
    print "}"
}
' "$RAW" > BENCH_emu.json

# The robustness-matrix distillation: per rewriter config, the pass /
# degraded / reject split over the adversarial corpus plus mean size and
# simulated-cycle overheads. Deterministic (simulated cycles, wire bytes),
# so the block is comparable across runs and machines.
echo "== chimera-eval -summary (robustness matrix per-config distillation)"
MATRIX_SUMMARY="$(mktemp)"
go run ./cmd/chimera-eval -summary > "$MATRIX_SUMMARY"
{
    sed '$ d' BENCH_emu.json
    printf '  ,"matrix": '
    sed 's/^/  /;1s/^  //' "$MATRIX_SUMMARY"
    echo "}"
} > BENCH_emu.json.tmp
mv BENCH_emu.json.tmp BENCH_emu.json
rm -f "$MATRIX_SUMMARY"

echo "== wrote BENCH_emu.json"
cat BENCH_emu.json
