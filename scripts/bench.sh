#!/bin/sh
# Emulator benchmark harness: runs the BenchmarkCPURun* emulated-MIPS
# benchmarks, the BenchmarkService*/BenchmarkRewriteBatch service suite, and
# the store hit-path benchmarks (memory-tier verified hits, disk-store hit
# latency), and distills the results into BENCH_emu.json (per benchmark:
# ns/op, emulated MIPS, ns per retired instruction, allocs/op, MB/s,
# batch items/s). Run from anywhere; writes to the repo root.
#
#   scripts/bench.sh                # default -benchtime
#   BENCHTIME=5s scripts/bench.sh   # longer runs for stable numbers
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench CPURun (internal/emu, -benchtime $BENCHTIME)"
go test -run=- -bench='BenchmarkCPURun' -benchmem -benchtime "$BENCHTIME" \
    ./internal/emu/ | tee "$RAW"

echo "== go test -bench Service|RewriteBatch (internal/service)"
go test -run=- -bench='BenchmarkService|BenchmarkRewriteBatch' -benchmem -benchtime 1x \
    ./internal/service/ | tee -a "$RAW"

echo "== go test -bench store hit paths (internal/store, -benchtime $BENCHTIME)"
go test -run=- -bench='BenchmarkMemoryHitParallel|BenchmarkDiskStoreHit' -benchmem \
    -benchtime "$BENCHTIME" ./internal/store/ | tee -a "$RAW"

# Distill `go test -bench` lines into JSON. Lines look like:
#   BenchmarkCPURunFib/blocks-8  865  3062081 ns/op  148.6 Minst/s  6.730 ns/inst  7 B/op  0 allocs/op
# The BenchmarkCPURunProfiler off/on pair also yields profiler_overhead_pct:
# the guest profiler's ns/inst cost relative to the profiler-off hot loop
# (the acceptance bound is < 2% for the off case vs the pre-profiler
# baseline; the on case documents the cost of enabling it).
awk '
BEGIN { print "{"; print "  \"benchmarks\": ["; n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    nsop = ""; mips = ""; nsinst = ""; allocs = ""; mbs = ""; items = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")      nsop = $i
        if ($(i+1) == "Minst/s")    mips = $i
        if ($(i+1) == "ns/inst")    nsinst = $i
        if ($(i+1) == "allocs/op")  allocs = $i
        if ($(i+1) == "MB/s")       mbs = $i
        if ($(i+1) == "items/s")    items = $i
    }
    if (nsop == "") next
    if (name == "BenchmarkCPURunProfiler/off" && nsinst != "") prof_off = nsinst
    if (name == "BenchmarkCPURunProfiler/on"  && nsinst != "") prof_on = nsinst
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, nsop
    if (mips != "")   printf ", \"emulated_mips\": %s", mips
    if (nsinst != "") printf ", \"ns_per_inst\": %s", nsinst
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (mbs != "")    printf ", \"mb_per_s\": %s", mbs
    if (items != "")  printf ", \"items_per_s\": %s", items
    printf "}"
}
END {
    print "\n  ],"
    if (prof_off + 0 > 0 && prof_on != "")
        printf "  \"profiler_overhead_pct\": %.2f,\n", (prof_on - prof_off) / prof_off * 100
    print "  \"note\": \"profiler_overhead_pct = CPURunProfiler on-vs-off ns/inst delta\""
    print "}"
}
' "$RAW" > BENCH_emu.json

echo "== wrote BENCH_emu.json"
cat BENCH_emu.json
