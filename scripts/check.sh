#!/bin/sh
# Pre-PR gate: vet, build, and the full test suite under the race detector.
# Run from anywhere; it anchors itself at the repo root.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "== bench smoke (1 iteration)"
go test -run=- -bench=. -benchtime=1x ./... >/dev/null
echo "== ok"
