#!/bin/sh
# Pre-PR gate: formatting, vet, build, the full test suite under the race
# detector, the warm-loop alloc and nil-hook instrumentation overhead
# gates, the coverage-guided campaign smoke, and short native-fuzz smokes
# over the differential oracles.
# Run from anywhere; it anchors itself at the repo root.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l . 2>/dev/null)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== metrics lint (chimera_[a-z_]+ naming + help text)"
go test -run 'TestMetricsLint|TestMetricNameValidation' -count=1 ./internal/service ./internal/telemetry
echo "== go test -race ./..."
go test -race ./...
echo "== chaos soak (1000 requests, fixed seed, -race; includes the 3-node cluster soak)"
CHIMERA_CHAOS_SOAK=1 go test -race -run 'TestChaosSoak' -count=1 -timeout 300s ./internal/service
echo "== cluster smoke (3 chimera-served processes, kill the shard owner, degraded-but-correct)"
go run ./cmd/chimera-smoke
echo "== resolver smoke (static recovery exact pins + >=5x runtime-rewrite fault reduction)"
go test -run 'TestResolverFaultReduction|TestResolverAvoidsRuntimeRewrites|TestDispatchFamilyRecovery' \
    -count=1 ./internal/bench ./internal/kernel ./internal/resolve
echo "== robustness matrix smoke (adversarial corpus x every rewriter config, baseline gate)"
go run ./cmd/chimera-eval -baseline internal/evalmatrix/testdata/matrix_baseline.json >/dev/null
echo "== bench smoke (1 iteration)"
go test -run=- -bench=. -benchtime=1x ./... >/dev/null
echo "== alloc gate (warm CPURun* hot loops must not allocate)"
ALLOC_RAW="$(mktemp)"
go test -run=- -bench='BenchmarkCPURun' -benchtime=1x -benchmem ./internal/emu/ | tee "$ALLOC_RAW"
awk '/^BenchmarkCPURun/ {
    for (i = 2; i < NF; i++)
        if ($(i+1) == "allocs/op" && $i + 0 > 0) {
            printf "alloc gate: %s reports %s allocs/op, want 0\n", $1, $i > "/dev/stderr"
            bad = 1
        }
} END { exit bad }' "$ALLOC_RAW"
rm -f "$ALLOC_RAW"
# The nil-hook gate takes the min of several short runs (noise floors, not
# means) and bounds attached-but-idle instrumentation at 2% of the bare hot
# loop — the fuzzing service's idle cost when no observers are installed.
echo "== instrument nil-hook overhead gate (nilhooks within 2% of off, min of 5 runs)"
OVH_RAW="$(mktemp)"
go test -run=- -bench='BenchmarkCPURunInstrument/(off|nilhooks)' -benchtime=50x -count=5 \
    ./internal/emu/ | tee "$OVH_RAW"
awk '
/^BenchmarkCPURunInstrument\/off/      { for (i = 2; i < NF; i++) if ($(i+1) == "ns/inst" && (off == "" || $i + 0 < off)) off = $i + 0 }
/^BenchmarkCPURunInstrument\/nilhooks/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/inst" && (nil == "" || $i + 0 < nil)) nil = $i + 0 }
END {
    if (off == "" || nil == "") { print "overhead gate: missing ns/inst samples" > "/dev/stderr"; exit 1 }
    printf "nil-hook overhead: off %.3f ns/inst, nilhooks %.3f ns/inst (%+.2f%%)\n", off, nil, (nil - off) / off * 100
    if (nil > off * 1.02) { print "overhead gate: nil-hook ns/inst exceeds off by more than 2%" > "/dev/stderr"; exit 1 }
}' "$OVH_RAW"
rm -f "$OVH_RAW"
echo "== fuzz campaign smoke (coverage-guided engine finds and minimizes the seeded bug)"
go run ./cmd/chimera-fuzz -campaign demo -campaign-execs 30000 -campaign-input 64 \
    -campaign-budget 200000 -campaign-expect-crash -campaign-o /dev/null
echo "== fuzz smoke (10s per target)"
go test -run=- -fuzz=FuzzDifferential -fuzztime=10s ./internal/fuzz >/dev/null
go test -run=- -fuzz=FuzzRewrite -fuzztime=10s ./internal/fuzz >/dev/null
go test -run=- -fuzz=FuzzObjLoad -fuzztime=10s ./internal/obj >/dev/null
echo "== ok"
