package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"github.com/eurosys26p57/chimera/internal/fuzzsvc"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
	"github.com/eurosys26p57/chimera/internal/workload"
)

// campaignFlags carries the -campaign* flag values from main.
type campaignFlags struct {
	target      string // "demo" or a path to an image in the obj wire format
	execs       uint64
	seed        int64
	budget      uint64
	maxInput    int
	expectCrash bool
	out         string
}

// runCampaign is the CLI campaign mode: fuzz one guest binary with the
// coverage-guided engine and report the triaged crashes as JSON. With
// -campaign-expect-crash the exit status asserts the outcome (for CI): 0
// when a crash was found and minimized, 1 otherwise.
func runCampaign(f campaignFlags) {
	var img *obj.Image
	var err error
	if f.target == "demo" {
		img, err = workload.FuzzTarget(riscv.RV64GC, true)
	} else {
		var file *os.File
		if file, err = os.Open(f.target); err == nil {
			img, err = obj.ReadImage(file)
			file.Close()
		}
	}
	if err != nil {
		fatal(err)
	}
	c, err := fuzzsvc.New(fuzzsvc.Config{
		Image:       img,
		MaxExecs:    f.execs,
		MaxInput:    f.maxInput,
		ExecBudget:  f.budget,
		Seed:        f.seed,
		StopOnCrash: f.expectCrash,
	})
	if err != nil {
		fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		fatal(err)
	}
	s := c.Snapshot()
	fmt.Fprintf(os.Stderr,
		"campaign done: %d execs, %d corpus, %d edges, %d hang(s), %d crash bucket(s), trace %s\n",
		s.Execs, s.Corpus, s.Edges, s.Hangs, len(s.Crashes), s.TraceDigest)
	for _, cr := range s.Crashes {
		fmt.Fprintf(os.Stderr, "  crash: signal %d at pc %#x, %d hits, minimized to %d byte(s)\n",
			cr.Signal, cr.PC, cr.Count, len(cr.Minimized))
	}
	enc, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if f.out != "" {
		if err := os.WriteFile(f.out, enc, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(enc)
	}
	if f.expectCrash && len(s.Crashes) == 0 {
		fmt.Fprintln(os.Stderr, "chimera-fuzz: expected a crash, none found")
		os.Exit(1)
	}
}
