// chimera-fuzz drives the differential fuzzing and rewriter-soundness
// oracle: seeded random RV64GC(V) programs are generated, assembled, and
// checked along four axes — interpreter vs. block engine, original vs.
// rewritten images (every rewriter configuration), the resolver's
// exhaustive-site claims vs. dynamically taken indirect targets, and
// fault-and-migrate scheduling vs. a single-core reference. Divergences
// are emitted as JSON reports carrying the spec and both execution
// traces; -minimize delta-debugs each diverging spec down to a small
// reproducer.
//
// Usage:
//
//	chimera-fuzz -n 500                        # seeds 0..499, all axes
//	chimera-fuzz -seed 1000 -n 200 -axes rewriters
//	chimera-fuzz -minimize -o report.json      # minimize and save reports
//	chimera-fuzz -corpus internal/fuzz/testdata/corpus
//	chimera-fuzz -minimize -save-corpus internal/fuzz/testdata/corpus
//
// Campaign mode fuzzes one guest binary with the coverage-guided engine
// (internal/fuzzsvc) instead of generating spec programs: the guest reads
// its test case via read(2), edge coverage and cmp-operand logging guide
// the mutation loop, and crashes are triaged to minimal reproducers.
//
//	chimera-fuzz -campaign demo -campaign-expect-crash
//	chimera-fuzz -campaign prog.img -campaign-execs 100000 -campaign-seed 7
//
// Exit status: 0 when every seed passes, 1 on any divergence (or, with
// -campaign-expect-crash, when the campaign found no crash), 2 on usage
// or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/eurosys26p57/chimera/internal/fuzz"
)

func main() {
	n := flag.Int("n", 500, "number of seeds to run")
	seed := flag.Int64("seed", 0, "first seed")
	axesFlag := flag.String("axes", "", "comma-separated axes to check: engines,rewriters,resolve,migration (default all)")
	minimize := flag.Bool("minimize", false, "delta-debug each diverging spec to a minimal reproducer")
	corpus := flag.String("corpus", "", "run spec files from this directory instead of generating")
	saveCorpus := flag.String("save-corpus", "", "save each diverging spec (minimized if -minimize) into this corpus directory, deduplicated by content hash")
	out := flag.String("o", "", "write JSON divergence reports to this file (default stdout)")
	maxFuncs := flag.Int("max-funcs", fuzz.DefaultConfig().MaxFuncs, "max functions per program")
	maxSteps := flag.Int("max-steps", fuzz.DefaultConfig().MaxSteps, "max steps per function")
	traceThreshold := flag.Uint("trace-threshold", defaultTraceThreshold(),
		"trace-tier promotion threshold for block-engine harts (0 disables the tier; also CHIMERA_FUZZ_TRACE_THRESHOLD)")
	verbose := flag.Bool("v", false, "log every seed")
	campaign := flag.String("campaign", "", `coverage-guided campaign mode: "demo" (the built-in seeded-bug guest) or a path to an image in the obj wire format`)
	campaignExecs := flag.Uint64("campaign-execs", 50_000, "campaign execution budget")
	campaignSeed := flag.Int64("campaign-seed", 1, "campaign PRNG seed (campaigns are deterministic per seed)")
	campaignBudget := flag.Uint64("campaign-budget", 1_000_000, "per-execution instruction budget (past it, the exec is a hang)")
	campaignInput := flag.Int("campaign-input", 256, "max generated input length in bytes")
	campaignExpectCrash := flag.Bool("campaign-expect-crash", false, "exit 1 unless the campaign finds at least one crash (CI gate); also stops at the first triaged crash")
	campaignOut := flag.String("campaign-o", "", "write the campaign snapshot JSON to this file (default stdout)")
	flag.Parse()
	fuzz.EngineTraceThreshold = uint32(*traceThreshold)

	if *campaign != "" {
		runCampaign(campaignFlags{
			target:      *campaign,
			execs:       *campaignExecs,
			seed:        *campaignSeed,
			budget:      *campaignBudget,
			maxInput:    *campaignInput,
			expectCrash: *campaignExpectCrash,
			out:         *campaignOut,
		})
		return
	}

	var axes []string
	if *axesFlag != "" {
		axes = strings.Split(*axesFlag, ",")
	}
	cfg := fuzz.DefaultConfig()
	cfg.MaxFuncs = *maxFuncs
	cfg.MaxSteps = *maxSteps

	var divergences []*fuzz.Divergence
	checked := 0
	check := func(label string, s fuzz.Spec) {
		checked++
		d, err := s.Check(axes)
		if err != nil {
			fatal(err)
		}
		if d == nil {
			if *verbose {
				fmt.Fprintf(os.Stderr, "ok   %s\n", label)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "FAIL %s: %s\n", label, d)
		if *minimize {
			min := fuzz.Minimize(s, func(c fuzz.Spec) bool {
				cd, cerr := c.Check(axes)
				return cerr == nil && cd != nil && cd.Axis == d.Axis
			})
			if md, merr := min.Check(axes); merr == nil && md != nil {
				n, _ := min.BodyInsts()
				fmt.Fprintf(os.Stderr, "     minimized to %d body insts\n", n)
				d = md
			}
		}
		divergences = append(divergences, d)
		if *saveCorpus != "" {
			path, added, err := fuzz.SaveCorpusSpec(*saveCorpus, *d.Spec)
			if err != nil {
				fatal(err)
			}
			if added {
				fmt.Fprintf(os.Stderr, "     saved reproducer to %s\n", path)
			} else {
				fmt.Fprintf(os.Stderr, "     duplicate of existing reproducer %s\n", path)
			}
		}
	}

	if *corpus != "" {
		files, err := filepath.Glob(filepath.Join(*corpus, "*.json"))
		if err != nil {
			fatal(err)
		}
		if len(files) == 0 {
			fatal(fmt.Errorf("no *.json specs under %s", *corpus))
		}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				fatal(err)
			}
			var s fuzz.Spec
			if err := json.Unmarshal(data, &s); err != nil {
				fatal(fmt.Errorf("%s: %w", f, err))
			}
			check(filepath.Base(f), s)
		}
	} else {
		for i := 0; i < *n; i++ {
			sd := *seed + int64(i)
			check(fmt.Sprintf("seed %d", sd), fuzz.Generate(sd, cfg))
		}
	}

	fmt.Fprintf(os.Stderr, "%d checked, %d divergence(s)\n", checked, len(divergences))
	if len(divergences) > 0 {
		enc, err := json.MarshalIndent(divergences, "", "  ")
		if err != nil {
			fatal(err)
		}
		enc = append(enc, '\n')
		if *out != "" {
			if err := os.WriteFile(*out, enc, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "reports written to %s\n", *out)
		} else {
			os.Stdout.Write(enc)
		}
		os.Exit(1)
	}
}

// defaultTraceThreshold lets CI sweeps force the trace tier hot (or off)
// without touching the command line.
func defaultTraceThreshold() uint {
	if s := os.Getenv("CHIMERA_FUZZ_TRACE_THRESHOLD"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 32); err == nil {
			return uint(v)
		}
	}
	return uint(fuzz.EngineTraceThreshold)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-fuzz:", err)
	os.Exit(2)
}
