// chimera-bench regenerates the paper's evaluation (§6): every figure and
// table of the evaluation section has a subcommand that prints the
// corresponding rows/series.
//
// Usage:
//
//	chimera-bench [-quick] fig11 | fig12 | fig13 | table2 | table3 | fig14 | fig14-scale | ablate | all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/eurosys26p57/chimera/internal/bench"
	"github.com/eurosys26p57/chimera/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "scaled-down configurations (seconds instead of minutes)")
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
	}
	cmd := flag.Arg(0)
	start := time.Now()
	var err error
	switch cmd {
	case "fig11", "fig12":
		err = runFig11(*quick)
	case "fig13":
		err = runFig13(*quick, true, false)
	case "table2":
		err = runFig13(*quick, false, true)
	case "table3":
		err = runTable3(*quick)
	case "fig14":
		err = runFig14(*quick, false)
	case "fig14-scale":
		err = runFig14(*quick, true)
	case "ablate":
		err = runAblate(*quick)
	case "all":
		for _, f := range []func() error{
			func() error { return runFig11(*quick) },
			func() error { return runFig13(*quick, true, true) },
			func() error { return runTable3(*quick) },
			func() error { return runFig14(*quick, false) },
			func() error { return runFig14(*quick, true) },
			func() error { return runAblate(*quick) },
		} {
			if err = f(); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chimera-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("\n[%s completed in %v]\n", cmd, time.Since(start).Round(time.Millisecond))
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: chimera-bench [-quick] fig11|fig12|fig13|table2|table3|fig14|fig14-scale|ablate|all")
	os.Exit(2)
}

func runFig11(quick bool) error {
	cfg := bench.DefaultFig11()
	if quick {
		cfg.Tasks = 24
		cfg.MatmulN = 16
		cfg.Shares = []int{0, 20, 40, 60, 80, 100}
	}
	for _, inputExt := range []bool{true, false} {
		res, err := bench.Fig11(cfg, inputExt)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		fmt.Printf("Chimera latency overhead vs MELF: %.1f%% (paper: 3.2%% downgrading / 5.3%% upgrading)\n\n",
			100*res.OverheadVsMELF())
	}
	return nil
}

func specCases(quick bool) ([]workload.SpecCase, int64) {
	cases := workload.SpecSuite()
	rounds := int64(0) // suite default
	if quick {
		cases = cases[:6]
		rounds = 20
	}
	return cases, rounds
}

func runFig13(quick, wantFig, wantTable bool) error {
	cases, rounds := specCases(quick)
	rows, err := bench.Fig13(cases, rounds)
	if err != nil {
		return err
	}
	if wantFig {
		bench.PrintFig13(os.Stdout, rows)
		fmt.Println()
	}
	if wantTable {
		// Table 2 also covers the real-world application set.
		rw := workload.RealWorldSuite()
		if quick {
			rw = rw[:3]
		}
		rwRows, err := bench.Fig13(rw, rounds)
		if err != nil {
			return err
		}
		bench.PrintTable2(os.Stdout, append(rwRows, rows...))
	}
	return nil
}

func runTable3(quick bool) error {
	cases, rounds := specCases(quick)
	all := append(append([]workload.SpecCase{}, workload.RealWorldSuite()...), cases...)
	if quick {
		all = all[:6]
	}
	rows, err := bench.Table3(all, rounds)
	if err != nil {
		return err
	}
	bench.PrintTable3(os.Stdout, rows)
	return nil
}

func runFig14(quick, scale bool) error {
	cfg := bench.DefaultFig14()
	kinds := workload.BLASKinds
	if scale {
		cfg = bench.ScalabilityFig14()
		kinds = []workload.BLASKind{workload.SGEMM}
		fmt.Println("(scalability run: sgemm on the 64-core machine, Fig. 14e)")
	}
	if quick {
		cfg.N = 24
		if scale {
			cfg.Threads = []int{16, 32, 64}
		}
	}
	for _, kind := range kinds {
		row, err := bench.Fig14Kernel(cfg, kind)
		if err != nil {
			return err
		}
		row.Print(os.Stdout)
		fmt.Println()
	}
	return nil
}

func runAblate(quick bool) error {
	cases, rounds := specCases(quick)
	rows, err := bench.Ablations(cases[0], rounds)
	if err != nil {
		return err
	}
	bench.PrintAblations(os.Stdout, rows)
	return nil
}
