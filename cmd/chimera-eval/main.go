// chimera-eval runs the rewriter robustness evaluation matrix: every
// rewriter configuration (chbp, strawman, safer, armore — each with and
// without resolver assistance) over every adversarial corpus family
// (internal/corpus), grading each cell pass / degraded / reject / wrong /
// crash with fault-rate, simulated-cycle, and code-size deltas. The matrix
// is emitted as JSON and, optionally, a self-contained HTML scorecard; a
// committed baseline gates regressions.
//
// Usage:
//
//	chimera-eval                                   # full matrix, summary to stdout
//	chimera-eval -seeds 4 -o matrix.json -html matrix.html
//	chimera-eval -families densetable,oversized -configs chbp,chbp-resolve
//	chimera-eval -baseline internal/evalmatrix/testdata/matrix_baseline.json
//	chimera-eval -baseline ... -gate grades -seeds 16   # wide sweep, grade gate only
//	chimera-eval -baseline ... -update-baseline         # regenerate after a real change
//	chimera-eval -summary                               # compact per-config JSON for bench.sh
//
// Exit status: 0 clean, 1 on gate violations or wrong/crash cells, 2 on
// usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/eurosys26p57/chimera/internal/evalmatrix"
)

func main() {
	families := flag.String("families", "", "comma-separated corpus families (default all)")
	configs := flag.String("configs", "", "comma-separated rewriter configs (default all)")
	seeds := flag.Int("seeds", 2, "seeds per family")
	seed := flag.Int64("seed", 1, "first seed")
	out := flag.String("o", "", "write the full matrix JSON to this file")
	htmlOut := flag.String("html", "", "write the self-contained HTML scorecard to this file")
	baseline := flag.String("baseline", "", "gate against this committed baseline JSON")
	update := flag.Bool("update-baseline", false, "rewrite -baseline from this run instead of gating")
	gate := flag.String("gate", "full", "baseline gate strictness: full (grades + metric tolerances, needs baseline-shaped run) or grades")
	summary := flag.Bool("summary", false, "print compact per-config summary JSON to stdout (for bench.sh)")
	traceThreshold := flag.Uint("trace-threshold", evalmatrix.DefaultTraceThreshold,
		"trace-tier promotion threshold for all runs")
	verbose := flag.Bool("v", false, "log every cell as it completes")
	flag.Parse()

	p := evalmatrix.Params{
		Seeds:          *seeds,
		Seed:           *seed,
		TraceThreshold: uint32(*traceThreshold),
	}
	if *families != "" {
		p.Families = strings.Split(*families, ",")
	}
	if *configs != "" {
		p.Configs = strings.Split(*configs, ",")
	}
	if *verbose {
		p.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var mode evalmatrix.GateMode
	switch *gate {
	case "full":
		mode = evalmatrix.GateFull
	case "grades":
		mode = evalmatrix.GateGrades
	default:
		fatal(fmt.Errorf("unknown -gate %q (want full or grades)", *gate))
	}

	m, err := evalmatrix.Run(p)
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "matrix written to %s\n", *out)
	}
	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, []byte(m.HTML()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scorecard written to %s\n", *htmlOut)
	}

	failed := false
	var unsound int
	for _, c := range m.Cells {
		if c.Grade == evalmatrix.GradeWrong || c.Grade == evalmatrix.GradeCrash {
			fmt.Fprintf(os.Stderr, "UNSOUND %s/%s: %s (%s)\n", c.Family, c.Config, c.Grade, c.Detail)
			unsound++
		}
	}
	if unsound > 0 {
		failed = true
	}

	if *baseline != "" {
		if *update {
			if err := evalmatrix.BaselineOf(m).Save(*baseline); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "baseline updated: %s\n", *baseline)
		} else {
			b, err := evalmatrix.LoadBaseline(*baseline)
			if err != nil {
				fatal(err)
			}
			violations := evalmatrix.Compare(b, m, mode)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "GATE %s\n", v)
			}
			if len(violations) > 0 {
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "baseline gate clean (%s mode, %d cells)\n", *gate, len(b.Cells))
			}
		}
	}

	if *summary {
		data, err := json.MarshalIndent(m.Summaries, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		printTable(m)
	}
	if failed {
		os.Exit(1)
	}
}

// printTable renders the human-readable grade grid to stdout.
func printTable(m *evalmatrix.Matrix) {
	fmt.Printf("%-15s", "")
	for _, c := range m.Configs {
		fmt.Printf(" %-17s", c)
	}
	fmt.Println()
	for _, f := range m.Families {
		fmt.Printf("%-15s", f)
		for _, cfg := range m.Configs {
			c, ok := m.Cell(f, cfg)
			if !ok {
				fmt.Printf(" %-17s", "-")
				continue
			}
			fmt.Printf(" %-17s", c.Grade)
		}
		fmt.Println()
	}
	fmt.Println()
	for _, s := range m.Summaries {
		fmt.Printf("%-17s pass %3.0f%%  degraded %3.0f%%  reject %3.0f%%  wrong %d  crash %d  size %+6.1f%%  cycles %+6.1f%%\n",
			s.Config, s.PassRate*100, s.DegradedRate*100, s.RejectRate*100,
			s.WrongCells, s.CrashCells, s.MeanSizeOverhead*100, s.MeanCycleOverhead*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-eval:", err)
	os.Exit(2)
}
