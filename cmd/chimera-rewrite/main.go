// chimera-rewrite rewrites an image for a target core's ISA with CHBP or
// one of the evaluated baselines, embedding the runtime tables in the
// output image.
//
// Usage:
//
//	chimera-rewrite -target rv64gc -method chbp -o prog.gc.chim prog.chim
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/eurosys26p57/chimera/internal/chbp"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/rewriters"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

func main() {
	target := flag.String("target", "rv64gc", "target ISA: rv64g, rv64gc, rv64gcv, rv64gcb")
	method := flag.String("method", "chbp", "rewriter: chbp, strawman, safer, armore")
	empty := flag.Bool("empty", false, "empty patching (replicate sources; §6.2 methodology)")
	noShift := flag.Bool("no-exit-shift", false, "disable exit-position shifting (ablation)")
	noBatch := flag.Bool("no-batching", false, "disable basic-block batching (ablation)")
	out := flag.String("o", "", "output image path")
	flag.Parse()
	if flag.NArg() != 1 || *out == "" {
		usage("")
	}
	// Validate flag values before touching the input file so bad invocations
	// fail fast with usage instead of late in the fatal path.
	isa, err := riscv.ParseISA(*target)
	if err != nil {
		usage(fmt.Sprintf("bad -target: %v", err))
	}
	switch *method {
	case "chbp", "strawman", "safer", "armore":
	default:
		usage(fmt.Sprintf("bad -method %q (want chbp, strawman, safer, armore)", *method))
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := obj.ReadImage(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var result *obj.Image
	switch *method {
	case "chbp", "strawman":
		opts := chbp.Options{
			TargetISA:        isa,
			EmptyPatch:       *empty,
			DisableExitShift: *noShift,
			DisableBatching:  *noBatch,
		}
		if *method == "strawman" {
			opts.Trampoline = chbp.TrapEntry
		}
		res, err := chbp.Rewrite(img, opts)
		if err != nil {
			fatal(err)
		}
		result = res.Image
		s := res.Stats
		fmt.Printf("%s: %d instructions, %d sources (%.2f%%)\n",
			img.Name, s.TotalInsts, s.SourceInsts, s.ExtPct)
		fmt.Printf("sites: %d (%d SMILE, %d trap entries, %d trap exits), %d upgrade sites\n",
			s.Sites, s.SmileEntries, s.TrapEntries, s.TrapExits, s.UpgradeSites)
		fmt.Printf("dead register not found: %d (traditional liveness: %d)\n",
			s.DeadRegFailShifted, s.DeadRegFailTraditional)
		fmt.Printf("target section: %d bytes (%d block instructions, %d padding)\n",
			s.TargetBytes, s.BlockInsts, s.PaddingBytes)
	case "safer":
		res, err := rewriters.Safer(img, isa, *empty)
		if err != nil {
			fatal(err)
		}
		result = res.Image
		fmt.Printf("%s: regenerated %d instructions into %d bytes\n",
			img.Name, res.Stats.Insts, res.Stats.NewCodeBytes)
		fmt.Println("note: Safer's address map is runtime state; use the in-process API for execution")
	case "armore":
		res, err := rewriters.ARMore(img, isa, *empty)
		if err != nil {
			fatal(err)
		}
		result = res.Image
		fmt.Printf("%s: %d trampolines (%d trap-based, %.1f%%)\n",
			img.Name, res.Stats.Trampolines, res.Stats.TrapTrampolines,
			100*float64(res.Stats.TrapTrampolines)/float64(max(1, res.Stats.Trampolines)))
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	of, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer of.Close()
	if _, err := result.WriteTo(of); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func usage(msg string) {
	if msg != "" {
		fmt.Fprintln(os.Stderr, "chimera-rewrite:", msg)
	}
	fmt.Fprintln(os.Stderr, "usage: chimera-rewrite -target ISA -method M -o out.chim in.chim")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-rewrite:", err)
	os.Exit(1)
}
