// chimera-rewrite rewrites an image for a target core's ISA with CHBP or
// one of the evaluated baselines, embedding the runtime tables in the
// output image.
//
// Usage:
//
//	chimera-rewrite -target rv64gc -method chbp -o prog.gc.chim prog.chim
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/eurosys26p57/chimera/internal/chbp"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/resolve"
	"github.com/eurosys26p57/chimera/internal/rewriters"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

func main() {
	target := flag.String("target", "rv64gc", "target ISA: rv64g, rv64gc, rv64gcv, rv64gcb")
	method := flag.String("method", "chbp", "rewriter: chbp, strawman, safer, armore")
	empty := flag.Bool("empty", false, "empty patching (replicate sources; §6.2 methodology)")
	noShift := flag.Bool("no-exit-shift", false, "disable exit-position shifting (ablation)")
	noBatch := flag.Bool("no-batching", false, "disable basic-block batching (ablation)")
	doResolve := flag.Bool("resolve", false, "run the static indirect-target resolver first (recover hidden jump-table arms)")
	out := flag.String("o", "", "output image path")
	flag.Parse()
	if flag.NArg() != 1 || *out == "" {
		usage("")
	}
	// Validate flag values before touching the input file so bad invocations
	// fail fast with usage instead of late in the fatal path.
	isa, err := riscv.ParseISA(*target)
	if err != nil {
		usage(fmt.Sprintf("bad -target: %v", err))
	}
	switch *method {
	case "chbp", "strawman", "safer", "armore":
	default:
		usage(fmt.Sprintf("bad -method %q (want chbp, strawman, safer, armore)", *method))
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := obj.ReadImage(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var ts *resolve.TargetSet
	if *doResolve {
		ts = resolve.Resolve(img)
		fmt.Printf("resolver: %s\n", ts.Summary())
	}
	var result *obj.Image
	switch *method {
	case "chbp", "strawman":
		opts := chbp.Options{
			TargetISA:        isa,
			EmptyPatch:       *empty,
			DisableExitShift: *noShift,
			DisableBatching:  *noBatch,
			Resolve:          *doResolve,
		}
		if *method == "strawman" {
			opts.Trampoline = chbp.TrapEntry
		}
		res, err := chbp.Rewrite(img, opts)
		if err != nil {
			fatal(err)
		}
		result = res.Image
		s := res.Stats
		fmt.Printf("%s: %d instructions, %d sources (%.2f%%)\n",
			img.Name, s.TotalInsts, s.SourceInsts, s.ExtPct)
		fmt.Printf("sites: %d (%d SMILE, %d trap entries, %d trap exits), %d upgrade sites\n",
			s.Sites, s.SmileEntries, s.TrapEntries, s.TrapExits, s.UpgradeSites)
		fmt.Printf("dead register not found: %d (traditional liveness: %d)\n",
			s.DeadRegFailShifted, s.DeadRegFailTraditional)
		fmt.Printf("target section: %d bytes (%d block instructions, %d padding)\n",
			s.TargetBytes, s.BlockInsts, s.PaddingBytes)
		if *doResolve {
			fmt.Printf("resolved: %d sites, %d targets; %d recovered instructions, %d pre-materialized sites (%d runtime rewrites avoided)\n",
				s.ResolvedSites, s.ResolvedTargets, s.RecoveredInsts,
				s.PrematerializedSites, s.AvoidedRewrites)
		}
	case "safer":
		res, err := saferOrWith(img, isa, *empty, ts)
		if err != nil {
			fatal(err)
		}
		result = res.Image
		fmt.Printf("%s: regenerated %d instructions into %d bytes\n",
			img.Name, res.Stats.Insts, res.Stats.NewCodeBytes)
		if *doResolve {
			fmt.Printf("resolved: %d recovered instructions, %d statically-encoded targets\n",
				res.Stats.RecoveredInsts, len(res.Resolved))
		}
		fmt.Println("note: Safer's address map is runtime state; use the in-process API for execution")
	case "armore":
		res, err := armoreOrWith(img, isa, *empty, ts)
		if err != nil {
			fatal(err)
		}
		result = res.Image
		fmt.Printf("%s: %d trampolines (%d trap-based, %.1f%%)\n",
			img.Name, res.Stats.Trampolines, res.Stats.TrapTrampolines,
			100*float64(res.Stats.TrapTrampolines)/float64(max(1, res.Stats.Trampolines)))
		if *doResolve {
			fmt.Printf("resolved: %d recovered instructions\n", res.Stats.RecoveredInsts)
		}
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	of, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer of.Close()
	if _, err := result.WriteTo(of); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// saferOrWith/armoreOrWith pick the resolver-seeded entry point when the
// -resolve flag computed a TargetSet.
func saferOrWith(img *obj.Image, isa riscv.Ext, empty bool, ts *resolve.TargetSet) (*rewriters.Rewritten, error) {
	if ts != nil {
		return rewriters.SaferWith(img, isa, empty, ts)
	}
	return rewriters.Safer(img, isa, empty)
}

func armoreOrWith(img *obj.Image, isa riscv.Ext, empty bool, ts *resolve.TargetSet) (*rewriters.Rewritten, error) {
	if ts != nil {
		return rewriters.ARMoreWith(img, isa, empty, ts)
	}
	return rewriters.ARMore(img, isa, empty)
}

func usage(msg string) {
	if msg != "" {
		fmt.Fprintln(os.Stderr, "chimera-rewrite:", msg)
	}
	fmt.Fprintln(os.Stderr, "usage: chimera-rewrite -target ISA -method M -o out.chim in.chim")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-rewrite:", err)
	os.Exit(1)
}
