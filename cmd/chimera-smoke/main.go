// chimera-smoke is the cluster smoke driver scripts/check.sh runs before a
// PR: it spawns a real 3-node chimera-served cluster (separate processes,
// separate disk stores, talking over loopback HTTP), proves the sharded
// store works end to end, then kills a node and proves the survivors keep
// answering correctly.
//
// The script asserts the full cluster story on live processes:
//
//  1. a cold rewrite on a non-owner node is offered to the key's shard
//     owner (observed through the peer protocol itself),
//  2. the same request on ANOTHER non-owner is a peer hit — one rewrite
//     executed cluster-wide, verified by summing /stats across nodes,
//  3. after the owner process is killed, fresh requests on the survivors
//     still return 200 with byte-identical results from both nodes — a
//     dead peer degrades to extra rewrites, never to errors.
//
// Usage (from the repo root):
//
//	go run ./cmd/chimera-smoke            # builds chimera-served itself
//	chimera-smoke -served ./chimera-served -peer-timeout 500ms
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"github.com/eurosys26p57/chimera/internal/cluster"
	"github.com/eurosys26p57/chimera/internal/workload"
)

// rewriteRequest / rewriteResult mirror the service's public JSON wire
// format (internal/service.Handler); the smoke speaks to the daemon exactly
// like an external client would.
type rewriteRequest struct {
	Method string `json:"method"`
	Target string `json:"target"`
	Image  []byte `json:"image"`
}

type rewriteResult struct {
	Key            string `json:"key"`
	ImageBytes     []byte `json:"image"`
	CacheHit       bool   `json:"cache_hit"`
	Tier           string `json:"tier"`
	PeerHit        bool   `json:"peer_hit"`
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason"`
}

type nodeStats struct {
	Stages map[string]struct {
		Count uint64 `json:"count"`
	} `json:"stages"`
	Cluster *struct {
		PeerHits   uint64 `json:"peer_hits"`
		PeerErrors uint64 `json:"peer_errors"`
	} `json:"cluster"`
}

type node struct {
	url string
	cmd *exec.Cmd
}

var procs []*exec.Cmd

func fatal(format string, args ...any) {
	for _, c := range procs {
		if c.Process != nil {
			c.Process.Kill()
			c.Wait()
		}
	}
	fmt.Fprintf(os.Stderr, "chimera-smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	served := flag.String("served", "", "chimera-served binary (empty = go build it into a temp dir)")
	peerTimeout := flag.Duration("peer-timeout", 500*time.Millisecond, "per-peer-call timeout passed to the nodes")
	timeout := flag.Duration("timeout", 90*time.Second, "overall smoke deadline")
	flag.Parse()
	deadline := time.Now().Add(*timeout)

	root, err := os.MkdirTemp("", "chimera-smoke-")
	if err != nil {
		fatal("%v", err)
	}
	defer os.RemoveAll(root)

	bin := *served
	if bin == "" {
		bin = filepath.Join(root, "chimera-served")
		build := exec.Command("go", "build", "-o", bin, "./cmd/chimera-served")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			fatal("building chimera-served: %v", err)
		}
	}

	// Reserve three ports, then release them for the daemons to bind. (The
	// gap is racy in principle; on a loopback smoke box it is fine.)
	const n = 3
	addrs := make([]string, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal("%v", err)
		}
		addrs[i] = l.Addr().String()
		urls[i] = "http://" + addrs[i]
		l.Close()
	}

	nodes := make([]*node, n)
	for i := 0; i < n; i++ {
		dir := filepath.Join(root, fmt.Sprintf("store%d", i))
		cmd := exec.Command(bin,
			"-addr", addrs[i],
			"-workers", "2",
			"-store-dir", dir,
			"-self", urls[i],
			"-peers", urls[(i+1)%n]+","+urls[(i+2)%n],
			"-peer-timeout", peerTimeout.String(),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fatal("starting node %d: %v", i, err)
		}
		procs = append(procs, cmd)
		nodes[i] = &node{url: urls[i], cmd: cmd}
	}
	for i, nd := range nodes {
		waitHealthy(i, nd.url, deadline)
	}
	fmt.Fprintf(os.Stderr, "chimera-smoke: 3 nodes up: %v\n", urls)

	img, err := workload.BuildSpec(workload.SpecParams{
		Name: "smoke", CodeKB: 32, Funcs: 5, VecFuncs: 3, BodyInsts: 20,
		IndirectEvery: 3, ErrEntryEvery: 10, PressureFuncs: 1,
		HardPressureFuncs: 1, Rounds: 3, Seed: 42,
	}, true)
	if err != nil {
		fatal("building workload: %v", err)
	}
	var wireBuf bytes.Buffer
	if _, err := img.WriteTo(&wireBuf); err != nil {
		fatal("%v", err)
	}
	wire := wireBuf.Bytes()

	// Phase 1: cold rewrite, offer, peer hit — one rewrite cluster-wide.
	ring := cluster.NewRing(urls, cluster.DefaultVNodes)
	cold := post(0, urls[0], rewriteRequest{Method: "chbp", Target: "rv64gc", Image: wire})
	if cold.CacheHit || cold.PeerHit || cold.Degraded {
		fatal("cold rewrite on node 0: hit=%t peer=%t degraded=%t", cold.CacheHit, cold.PeerHit, cold.Degraded)
	}
	owner := indexOf(urls, ring.Owner(cold.Key))
	if owner < 0 {
		fatal("ring owner %q is not a member of %v", ring.Owner(cold.Key), urls)
	}
	fmt.Fprintf(os.Stderr, "chimera-smoke: key owner is node %d\n", owner)
	if owner != 0 {
		// The async offer must land at the owner; observe it through the
		// peer protocol, exactly as another node would.
		waitOffered(urls[owner], cold.Key, deadline)
	}
	// Every OTHER node now answers without rewriting: the owner from its
	// local store, non-owners via a peer hit against the owner.
	for i := 1; i < n; i++ {
		res := post(i, urls[i], rewriteRequest{Method: "chbp", Target: "rv64gc", Image: wire})
		if !bytes.Equal(res.ImageBytes, cold.ImageBytes) {
			fatal("node %d returned different bytes than the cold rewrite", i)
		}
		if i == owner && !res.CacheHit {
			fatal("owner node %d missed its own shard (hit=%t peer=%t)", i, res.CacheHit, res.PeerHit)
		}
		if i != owner && !res.CacheHit && !res.PeerHit {
			fatal("node %d neither hit locally nor via the owner", i)
		}
	}
	var rewrites uint64
	for i := 0; i < n; i++ {
		rewrites += stats(urls[i]).Stages["rewrite"].Count
	}
	if rewrites != 1 {
		fatal("cluster executed %d rewrites for one key, want exactly 1", rewrites)
	}
	fmt.Fprintf(os.Stderr, "chimera-smoke: cross-fill ok (1 rewrite cluster-wide)\n")

	// Phase 2: kill the shard owner. The survivors must keep answering —
	// fresh keys owned by the corpse cost a local rewrite, never an error —
	// and stay deterministic (both survivors produce identical bytes).
	nodes[owner].cmd.Process.Kill()
	nodes[owner].cmd.Wait()
	fmt.Fprintf(os.Stderr, "chimera-smoke: killed node %d (the owner)\n", owner)
	var survivors []int
	for i := 0; i < n; i++ {
		if i != owner {
			survivors = append(survivors, i)
		}
	}
	for _, m := range []string{"strawman", "safer", "armore"} {
		req := rewriteRequest{Method: m, Target: "rv64gc", Image: wire}
		a := post(survivors[0], urls[survivors[0]], req)
		b := post(survivors[1], urls[survivors[1]], req)
		if a.Degraded || b.Degraded {
			fatal("%s degraded after node kill: %q / %q", m, a.DegradedReason, b.DegradedReason)
		}
		if !bytes.Equal(a.ImageBytes, b.ImageBytes) {
			fatal("%s: survivors disagree on the rewritten bytes", m)
		}
		deadOwner := indexOf(urls, ring.Owner(a.Key)) == owner
		fmt.Fprintf(os.Stderr, "chimera-smoke: %s served by survivors (owner dead: %t)\n", m, deadOwner)
	}
	for _, i := range survivors {
		resp, err := http.Get(urls[i] + "/healthz")
		if err != nil || resp.StatusCode != http.StatusOK {
			fatal("survivor %d unhealthy after node kill", i)
		}
		resp.Body.Close()
	}

	for _, i := range survivors {
		nodes[i].cmd.Process.Kill()
		nodes[i].cmd.Wait()
	}
	fmt.Fprintln(os.Stderr, "chimera-smoke: ok")
}

func post(node int, base string, req rewriteRequest) *rewriteResult {
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/rewrite", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal("node %d: %v", node, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal("node %d: /rewrite status %d (rewrites must always be answered)", node, resp.StatusCode)
	}
	var res rewriteResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		fatal("node %d: decoding response: %v", node, err)
	}
	return &res
}

func stats(base string) nodeStats {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		fatal("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st nodeStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fatal("decoding /stats: %v", err)
	}
	return st
}

func waitHealthy(i int, base string, deadline time.Time) {
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			fatal("node %d never became healthy at %s", i, base)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitOffered polls the owner's peer-protocol endpoint until the offered
// entry is present (the offer is asynchronous).
func waitOffered(ownerURL, key string, deadline time.Time) {
	target := ownerURL + cluster.PeerPathPrefix + cluster.EntryID(key)
	for {
		req, _ := http.NewRequest(http.MethodGet, target, nil)
		req.Header.Set(cluster.KeyHeader, key)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			fatal("offer never reached the shard owner at %s", ownerURL)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func indexOf(urls []string, u string) int {
	for i, v := range urls {
		if v == u {
			return i
		}
	}
	return -1
}
