// chimera-served runs the Chimera rewrite service: a long-running daemon
// that rewrites images for target core classes over an HTTP JSON API, with
// a content-addressed rewrite cache, singleflight deduplication, and a
// bounded worker pool. See README.md "Serving mode".
//
// Usage:
//
//	chimera-served -addr :8080 -workers 8 -cache-mb 256
//
// Endpoints: POST /rewrite, POST /run, GET /healthz, GET /stats.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/eurosys26p57/chimera/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "pending-request queue depth (0 = 4x workers)")
	cacheMB := flag.Int64("cache-mb", 256, "rewrite cache budget in MiB")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	srv := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: *cacheMB << 20,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "chimera-served: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "chimera-served: %v, draining\n", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the worker pool so every
	// accepted request finishes before the process exits.
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "chimera-served: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "chimera-served: drained; %d served, cache hit ratio %.2f\n",
		st.Completed, st.Cache.HitRatio)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-served:", err)
	os.Exit(1)
}
