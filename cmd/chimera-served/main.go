// chimera-served runs the Chimera rewrite service: a long-running daemon
// that rewrites images for target core classes over an HTTP JSON API, with
// a content-addressed rewrite cache, singleflight deduplication, and a
// bounded worker pool. See README.md "Serving mode".
//
// Usage:
//
//	chimera-served -addr :8080 -workers 8 -cache-mb 256 \
//	    -request-timeout 2m -max-retries 2
//
// Persistence and clustering:
//
//	chimera-served -addr :8080 -store-dir /var/lib/chimera \
//	    -self http://10.0.0.1:8080 \
//	    -peers http://10.0.0.2:8080,http://10.0.0.3:8080
//
// -store-dir mounts a persistent disk tier under the memory cache (warm
// restarts); -self/-peers shard the store across nodes by consistent
// hashing — a miss consults the key's shard owner before rewriting, and a
// dead peer only costs extra rewrites, never errors.
//
// Endpoints: POST /rewrite, POST /rewrite/batch, POST /run, POST /fuzz
// (coverage-guided fuzzing campaigns; GET /fuzz/{id} and /fuzz/{id}/corpus
// for status and corpus), GET /healthz, GET /stats, GET /metrics
// (Prometheus), GET /trace/{id}, GET /profile, GET/PUT /peer/store/{id}
// (the cluster peer protocol). -fuzz-campaigns caps concurrent campaigns
// (negative disables the fuzz endpoints entirely).
//
// Observability: every response to a traced endpoint carries an
// X-Chimera-Trace header naming its /trace/{id} record; -debug-addr
// mounts net/http/pprof on a SEPARATE listener (keep it private);
// -guest-profile enables the per-image guest profiler served at /profile.
//
// Failure policy: a rewrite that keeps failing (panic, stall, repeated
// errors) is retried with backoff, its config is quarantined by a circuit
// breaker, and the request is answered with the ORIGINAL image (the
// paper's scalar-core fallback) — flagged `degraded` in the response and
// counted in /stats. -chaos-seed enables deterministic fault injection for
// resilience testing.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on http.DefaultServeMux, served only via -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/eurosys26p57/chimera/internal/chaos"
	"github.com/eurosys26p57/chimera/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "pending-request queue depth (0 = 4x workers)")
	cacheMB := flag.Int64("cache-mb", 256, "memory-tier rewrite cache budget in MiB")
	storeDir := flag.String("store-dir", "", "persistent disk store directory (empty = memory-only)")
	diskCacheMB := flag.Int64("disk-cache-mb", 1024, "disk-tier store budget in MiB (with -store-dir)")
	self := flag.String("self", "", "this node's advertised base URL for clustering, e.g. http://10.0.0.1:8080")
	peers := flag.String("peers", "", "comma-separated peer base URLs for sharded cluster serving")
	peerTimeout := flag.Duration("peer-timeout", 2*time.Second, "per-peer-call timeout")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
	reqTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-request deadline (0 = library default, negative = off)")
	maxRetries := flag.Int("max-retries", 2, "rewrite retries before degrading to the original image (negative = none)")
	runBudget := flag.Int64("run-max-instret", 0, "per-/run instruction budget (0 = default 2e9, negative = off)")
	chaosSeed := flag.Int64("chaos-seed", 0, "enable fault injection with this seed (0 = off; NEVER in production)")
	traceCap := flag.Int("trace-capacity", 0, "request traces retained for /trace/{id} (0 = default 256, negative = tracing off)")
	guestProfile := flag.Bool("guest-profile", false, "profile guest execution per image and serve it at /profile")
	fuzzCampaigns := flag.Int("fuzz-campaigns", 0, "max concurrent fuzzing campaigns for POST /fuzz (0 = default 4, negative = endpoint off)")
	debugAddr := flag.String("debug-addr", "", "listen address for net/http/pprof (empty = off; never expose publicly)")
	flag.Parse()

	cfg := service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheBytes:     *cacheMB << 20,
		StoreDir:       *storeDir,
		DiskCacheBytes: *diskCacheMB << 20,
		ClusterSelf:    *self,
		PeerTimeout:    *peerTimeout,
		RequestTimeout: *reqTimeout,
		MaxRetries:     *maxRetries,
		RunMaxInstret:  *runBudget,
		TraceCapacity:  *traceCap,
		GuestProfile:   *guestProfile,
		MaxCampaigns:   *fuzzCampaigns,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.ClusterPeers = append(cfg.ClusterPeers, p)
			}
		}
		if cfg.ClusterSelf == "" {
			fatal(fmt.Errorf("-peers requires -self (this node's advertised URL)"))
		}
	}
	if *chaosSeed != 0 {
		cfg.Chaos = chaos.Default(*chaosSeed)
		fmt.Fprintf(os.Stderr, "chimera-served: CHAOS INJECTION ENABLED (seed %d)\n", *chaosSeed)
	}
	srv, err := service.NewServer(cfg)
	if err != nil {
		fatal(err)
	}
	if *storeDir != "" {
		fmt.Fprintf(os.Stderr, "chimera-served: disk store at %s (%d MiB budget)\n", *storeDir, *diskCacheMB)
	}
	if len(cfg.ClusterPeers) > 0 {
		fmt.Fprintf(os.Stderr, "chimera-served: cluster self=%s peers=%v\n", cfg.ClusterSelf, cfg.ClusterPeers)
	}
	hs := srv.HTTPServer(*addr)

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "chimera-served: listening on %s\n", *addr)

	// pprof lives on its own listener, never the public API: importing
	// net/http/pprof mutates http.DefaultServeMux, so the debug server uses
	// exactly that mux while the API handler keeps its own.
	if *debugAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "chimera-served: pprof on %s (do not expose publicly)\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, http.DefaultServeMux); err != nil {
				fmt.Fprintf(os.Stderr, "chimera-served: pprof listener: %v\n", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "chimera-served: %v, draining\n", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the worker pool so every
	// accepted request finishes before the process exits.
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "chimera-served: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "chimera-served: drained; %d served, cache hit ratio %.2f, %d degraded, %d panics isolated\n",
		st.Completed, st.Cache.HitRatio, st.Faults.Degradations, st.Faults.Panics)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-served:", err)
	os.Exit(1)
}
