// chimera-asm assembles RISC-V assembler text into a Chimera image.
//
// Usage:
//
//	chimera-asm -o prog.chim -entry main prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/eurosys26p57/chimera/internal/asm"
)

func main() {
	out := flag.String("o", "", "output image path (default: input with .chim)")
	entry := flag.String("entry", "main", "entry symbol")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chimera-asm [-o out.chim] [-entry main] input.s")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	name := strings.TrimSuffix(filepath.Base(in), filepath.Ext(in))
	img, err := asm.Assemble(string(src), name, *entry)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = strings.TrimSuffix(in, filepath.Ext(in)) + ".chim"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if _, err := img.WriteTo(f); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %s, %d bytes of code, entry %#x\n", path, img.ISA, img.CodeSize(), img.Entry)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-asm:", err)
	os.Exit(1)
}
