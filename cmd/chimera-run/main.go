// chimera-run loads one or more image variants as a process and executes
// it on a simulated core, servicing CHBP's runtime mechanisms (fault
// recovery, trap trampolines, runtime rewriting).
//
// Usage:
//
//	chimera-run prog.chim                      # run on a core matching the image
//	chimera-run -isa rv64gc prog.gc.chim       # run on a base core
//	chimera-run -isa rv64gc -with prog.chim prog.gc.chim
//	                                           # load both variants as MMViews
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/eurosys26p57/chimera/internal/kernel"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
)

func main() {
	isaFlag := flag.String("isa", "", "core ISA to run on (default: the image's)")
	with := flag.String("with", "", "additional variant image to load as a sibling MMView")
	verbose := flag.Bool("v", false, "print kernel counters")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chimera-run [-isa rv64gc] [-with other.chim] prog.chim")
		os.Exit(2)
	}
	img, err := readImage(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	variants := []kernel.Variant{}
	v, err := kernel.VariantFromImage(img)
	if err != nil {
		fatal(err)
	}
	variants = append(variants, v)
	if *with != "" {
		other, err := readImage(*with)
		if err != nil {
			fatal(err)
		}
		ov, err := kernel.VariantFromImage(other)
		if err != nil {
			fatal(err)
		}
		variants = append(variants, ov)
	}
	isa := img.ISA
	if *isaFlag != "" {
		isa, err = riscv.ParseISA(*isaFlag)
		if err != nil {
			fatal(err)
		}
	}
	p, err := kernel.NewProcess(img.Name, variants)
	if err != nil {
		fatal(err)
	}
	if err := p.MigrateTo(isa); err != nil {
		fatal(err)
	}
	p.CPU.ISA = isa

	var total uint64
	for !p.Exited {
		cycles, st, err := p.Run(10_000_000)
		total += cycles
		if err != nil {
			fatal(err)
		}
		if st == kernel.StatusNeedMigration {
			fatal(fmt.Errorf("image needs a core with more extensions than %v", isa))
		}
	}
	os.Stdout.Write(p.Output)
	fmt.Printf("[%s on %v: exit %d, %d cycles (%.3fms at 1.6GHz), %d instructions]\n",
		img.Name, isa, p.ExitCode, total, float64(total)/1.6e6, p.CPU.Instret)
	if *verbose {
		c := p.Counters
		fmt.Printf("[faults recovered: %d, traps: %d, checks: %d, runtime rewrites: %d, syscalls: %d]\n",
			c.FaultRecoveries, c.Traps, c.Checks, c.RuntimeRewrites, c.Syscalls)
	}
	if p.ExitCode >= 128 {
		os.Exit(int(p.ExitCode - 128))
	}
}

func readImage(path string) (*obj.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obj.ReadImage(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-run:", err)
	os.Exit(1)
}
