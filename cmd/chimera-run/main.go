// chimera-run loads one or more image variants as a process and executes
// it on a simulated core, servicing CHBP's runtime mechanisms (fault
// recovery, trap trampolines, runtime rewriting).
//
// Usage:
//
//	chimera-run prog.chim                      # run on a core matching the image
//	chimera-run -isa rv64gc prog.gc.chim       # run on a base core
//	chimera-run -isa rv64gc -with prog.chim prog.gc.chim
//	                                           # load both variants as MMViews
//	chimera-run -profile prog.chim             # symbolized hot-block profile
//	chimera-run -profile -folded p.folded prog.chim
//	                                           # + flamegraph folded stacks
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/eurosys26p57/chimera/internal/emu"
	"github.com/eurosys26p57/chimera/internal/kernel"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/riscv"
	"github.com/eurosys26p57/chimera/internal/telemetry"
)

func main() {
	isaFlag := flag.String("isa", "", "core ISA to run on (default: the image's)")
	with := flag.String("with", "", "additional variant image to load as a sibling MMView")
	verbose := flag.Bool("v", false, "print kernel counters")
	stats := flag.Bool("stats", false, "print emulator throughput and block/trace-cache statistics")
	traceThreshold := flag.Uint("trace-threshold", uint(emu.DefaultTraceThreshold),
		"block dispatch count that promotes a hot chain into a superblock trace (0 disables the trace tier)")
	profile := flag.Bool("profile", false, "profile the guest: print hot basic blocks (symbolized) and folded stacks")
	folded := flag.String("folded", "", "with -profile, also write flamegraph folded-stack lines to this file")
	top := flag.Int("top", 10, "with -profile, number of hot blocks to print")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chimera-run [-isa rv64gc] [-with other.chim] prog.chim")
		os.Exit(2)
	}
	img, err := readImage(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	variants := []kernel.Variant{}
	v, err := kernel.VariantFromImage(img)
	if err != nil {
		fatal(err)
	}
	variants = append(variants, v)
	if *with != "" {
		other, err := readImage(*with)
		if err != nil {
			fatal(err)
		}
		ov, err := kernel.VariantFromImage(other)
		if err != nil {
			fatal(err)
		}
		variants = append(variants, ov)
	}
	isa := img.ISA
	if *isaFlag != "" {
		isa, err = riscv.ParseISA(*isaFlag)
		if err != nil {
			fatal(err)
		}
	}
	p, err := kernel.NewProcess(img.Name, variants)
	if err != nil {
		fatal(err)
	}
	if err := p.MigrateTo(isa); err != nil {
		fatal(err)
	}
	p.CPU.ISA = isa
	p.CPU.TraceThreshold = uint32(*traceThreshold)
	var prof *telemetry.GuestProfiler
	var syms *telemetry.SymTable
	if *profile {
		prof = telemetry.NewGuestProfiler()
		p.CPU.Prof = prof
		imgs := []*obj.Image{img}
		for _, v := range variants[1:] {
			imgs = append(imgs, v.Image)
		}
		syms = emu.SymTableOf(imgs...)
	}

	var total uint64
	startAt := time.Now()
	for !p.Exited {
		cycles, st, err := p.Run(10_000_000)
		total += cycles
		if err != nil {
			fatal(err)
		}
		if st == kernel.StatusNeedMigration {
			fatal(fmt.Errorf("image needs a core with more extensions than %v", isa))
		}
	}
	wall := time.Since(startAt)
	os.Stdout.Write(p.Output)
	fmt.Printf("[%s on %v: exit %d, %d cycles (%.3fms at 1.6GHz), %d instructions]\n",
		img.Name, isa, p.ExitCode, total, float64(total)/1.6e6, p.CPU.Instret)
	if *verbose {
		c := p.Counters
		fmt.Printf("[faults recovered: %d, traps: %d, checks: %d, runtime rewrites: %d, syscalls: %d]\n",
			c.FaultRecoveries, c.Traps, c.Checks, c.RuntimeRewrites, c.Syscalls)
	}
	if *stats {
		b := p.CPU.Blocks
		mips := 0.0
		if s := wall.Seconds(); s > 0 {
			mips = float64(p.CPU.Instret) / s / 1e6
		}
		fmt.Printf("[retired: %d insts, %d cycles, %.1f emulated MIPS]\n",
			p.CPU.Instret, p.CPU.Cycles, mips)
		fmt.Printf("[blocks: %d built, %d hits (%.1f%% hit ratio), %d invalidations, %.1f insts/dispatch]\n",
			b.Built, b.Hits, 100*b.HitRatio(), b.Invalidations, b.RetiredPerDispatch())
		fmt.Printf("[traces: %d built, %d hits, %d/%d insts trace-retired, %.1f%% side exits, pic %d/%d hits]\n",
			b.TracesBuilt, b.TraceHits, b.TraceRetired, b.Retired, 100*b.SideExitRate(), b.PICHits, b.PICHits+b.PICMisses)
	}
	if *profile {
		fmt.Printf("\n[guest profile: %d distinct blocks]\n", prof.Blocks())
		prof.WriteTable(os.Stdout, syms, *top)
		if *folded != "" {
			f, err := os.Create(*folded)
			if err != nil {
				fatal(err)
			}
			prof.FoldedStacks(f, img.Name, syms)
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("[folded stacks written to %s]\n", *folded)
		}
	}
	if p.ExitCode >= 128 {
		os.Exit(int(p.ExitCode - 128))
	}
}

func readImage(path string) (*obj.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obj.ReadImage(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-run:", err)
	os.Exit(1)
}
