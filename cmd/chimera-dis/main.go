// chimera-dis disassembles a Chimera image recursively and prints the
// recognized instructions, coverage, and indirect-jump sites.
//
// Usage:
//
//	chimera-dis prog.chim
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/eurosys26p57/chimera/internal/dis"
	"github.com/eurosys26p57/chimera/internal/obj"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chimera-dis prog.chim")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	img, err := obj.ReadImage(f)
	if err != nil {
		fatal(err)
	}
	res := dis.Disassemble(img)

	// Symbol index for annotation.
	symAt := map[uint64]string{}
	for _, s := range img.Symbols {
		if s.Kind == obj.SymFunc {
			symAt[s.Addr] = s.Name
		}
	}
	indirect := map[uint64]bool{}
	for _, a := range res.IndirectJumps {
		indirect[a] = true
	}

	for _, a := range res.Order {
		if name, ok := symAt[a]; ok {
			fmt.Printf("\n%s:\n", name)
		}
		in := res.Insns[a]
		note := ""
		if indirect[a] {
			note = "\t; indirect"
		}
		fmt.Printf("  %#08x:  %s%s\n", a, in, note)
	}

	fmt.Printf("\n%d instructions, %.1f%% of executable bytes covered, %d indirect jumps, %d calls\n",
		len(res.Order), 100*res.Coverage(img), len(res.IndirectJumps), len(res.Calls))
	if len(res.Undecodable) > 0 {
		var addrs []uint64
		for a := range res.Undecodable {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		fmt.Printf("undecodable on recursive paths:\n")
		for _, a := range addrs {
			fmt.Printf("  %#08x: %v\n", a, res.Undecodable[a])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-dis:", err)
	os.Exit(1)
}
