// chimera-dis disassembles a Chimera image recursively and prints the
// recognized instructions, coverage, and indirect-jump sites.
//
// Usage:
//
//	chimera-dis prog.chim
//	chimera-dis -resolve prog.chim   # relational target recovery per site
//	chimera-dis -resolve -dot prog.chim > cfg.dot
//
// -resolve runs the static resolver and prints every indirect site with
// its recovered candidate targets and confidence tiers; the listing then
// covers the completed disassembly (jump-table arms reachable only
// through recovered targets included). -dot dumps the control-flow graph
// as Graphviz DOT instead of a listing; combined with -resolve the graph
// carries the completed indirect edges, drawn dashed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/eurosys26p57/chimera/internal/cfg"
	"github.com/eurosys26p57/chimera/internal/dis"
	"github.com/eurosys26p57/chimera/internal/obj"
	"github.com/eurosys26p57/chimera/internal/resolve"
)

func main() {
	doResolve := flag.Bool("resolve", false, "recover indirect-jump targets and print per-site candidates with confidence tiers")
	doDot := flag.Bool("dot", false, "dump the control-flow graph as Graphviz DOT instead of a listing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chimera-dis [-resolve] [-dot] prog.chim")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	img, err := obj.ReadImage(f)
	if err != nil {
		fatal(err)
	}

	var ts *resolve.TargetSet
	res := dis.Disassemble(img)
	if *doResolve {
		ts = resolve.Resolve(img)
		res = ts.Dis
	}

	// Symbol index for annotation.
	symAt := map[uint64]string{}
	for _, s := range img.Symbols {
		if s.Kind == obj.SymFunc {
			symAt[s.Addr] = s.Name
		}
	}

	if *doDot {
		var g *cfg.Graph
		if ts != nil {
			g = cfg.BuildResolved(res, ts)
		} else {
			g = cfg.Build(res)
		}
		writeDot(os.Stdout, g, symAt)
		return
	}

	indirect := map[uint64]bool{}
	for _, a := range res.IndirectJumps {
		indirect[a] = true
	}

	for _, a := range res.Order {
		if name, ok := symAt[a]; ok {
			fmt.Printf("\n%s:\n", name)
		}
		in := res.Insns[a]
		note := ""
		if indirect[a] {
			note = "\t; indirect"
			if ts != nil {
				if s := ts.Site(a); s != nil && len(s.Targets) > 0 {
					note = fmt.Sprintf("\t; indirect [%s, %d candidates]", s.Tier(), len(s.Targets))
				}
			}
		}
		fmt.Printf("  %#08x:  %s%s\n", a, in, note)
	}

	fmt.Printf("\n%d instructions, %.1f%% of executable bytes covered, %d indirect jumps, %d calls\n",
		len(res.Order), 100*res.Coverage(img), len(res.IndirectJumps), len(res.Calls))
	if len(res.Undecodable) > 0 {
		var addrs []uint64
		for a := range res.Undecodable {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		fmt.Printf("undecodable on recursive paths:\n")
		for _, a := range addrs {
			fmt.Printf("  %#08x: %v\n", a, res.Undecodable[a])
		}
	}
	if ts != nil {
		printResolved(ts, symAt)
	}
}

// printResolved lists every indirect site with its recovered candidates,
// most confident tier first within each site.
func printResolved(ts *resolve.TargetSet, symAt map[uint64]string) {
	var sites []uint64
	for a := range ts.Sites {
		sites = append(sites, a)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	fmt.Printf("\nresolver: %s\n", ts.Summary())
	for _, a := range sites {
		s := ts.Sites[a]
		kind := "jump"
		if s.Call {
			kind = "call"
		}
		claim := ""
		if s.Exhaustive {
			claim = ", exhaustive"
		}
		fmt.Printf("site %#08x (%s%s):\n", a, kind, claim)
		if s.Table != nil {
			fmt.Printf("  table %#08x..%#08x in %s: %d entries x %d bytes\n",
				s.Table.Base, s.Table.End(), s.Table.Section, s.Table.Count, s.Table.Stride)
		}
		targets := append([]resolve.Target(nil), s.Targets...)
		sort.Slice(targets, func(i, j int) bool {
			if targets[i].Tier != targets[j].Tier {
				return targets[i].Tier > targets[j].Tier
			}
			return targets[i].Addr < targets[j].Addr
		})
		for _, t := range targets {
			name := ""
			if n, ok := symAt[t.Addr]; ok {
				name = " <" + n + ">"
			}
			fmt.Printf("  -> %#08x%s  [%s, %s]\n", t.Addr, name, t.Tier, t.Rule)
		}
	}
}

// writeDot dumps the CFG in Graphviz DOT form: one node per basic block
// labeled with its extent (and leading symbol, when one starts there),
// solid edges for static successors, dashed bold edges for successors the
// resolver recovered at an exhaustive indirect site.
func writeDot(w *os.File, g *cfg.Graph, symAt map[uint64]string) {
	fmt.Fprintln(w, "digraph cfg {")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];")
	for _, start := range g.Order {
		b := g.Blocks[start]
		label := fmt.Sprintf("%#x..%#x", b.Start, b.End(g.Dis))
		if name, ok := symAt[b.Start]; ok {
			label = name + "\\n" + label
		}
		attrs := []string{fmt.Sprintf("label=\"%s\"", label)}
		if b.HasIndirect {
			attrs = append(attrs, "color=orange")
		}
		fmt.Fprintf(w, "  b%x [%s];\n", b.Start, strings.Join(attrs, ", "))

		resolved := make(map[uint64]bool, len(b.ResolvedTargets))
		for _, t := range b.ResolvedTargets {
			resolved[g.BlockOf[t]] = true
		}
		for _, s := range b.Succs {
			if resolved[s] {
				fmt.Fprintf(w, "  b%x -> b%x [style=dashed, penwidth=2, color=blue];\n", b.Start, s)
			} else {
				fmt.Fprintf(w, "  b%x -> b%x;\n", b.Start, s)
			}
		}
	}
	fmt.Fprintln(w, "}")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-dis:", err)
	os.Exit(1)
}
