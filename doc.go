// Package chimera is the root of the Chimera reproduction: a transparent,
// high-performance ISAX heterogeneous computing system via binary rewriting
// (EuroSys '26), built on a simulated RISC-V substrate.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for paper-vs-
// measured results. The benchmark harness in bench_test.go regenerates
// every table and figure of the paper's evaluation; cmd/chimera-bench is
// the CLI equivalent.
package chimera
